package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := ch.L()
		rec := MulT(l, l) // L·Lᵀ
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(rec.At(i, j), a.At(i, j), 1e-9) {
					t.Fatalf("n=%d: L·Lᵀ[%d,%d]=%g want %g", n, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("upper entry L[%d,%d]=%g nonzero", i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskySolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSPD(rng, 25)
	xTrue := make(Vec, 25)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.SolveVec(b)
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-8) {
			t.Fatalf("x[%d]=%g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 12)
	bx := randomDense(rng, 12, 4)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve(bx)
	rec := Mul(a, x)
	matricesEqual(t, rec, bx, 1e-8)
}

func TestCholeskyLogDet(t *testing.T) {
	// Diagonal matrix: log det is the sum of logs.
	d := New(4, 4)
	vals := []float64{2, 3, 0.5, 7}
	want := 0.0
	for i, v := range vals {
		d.Set(i, i, v)
		want += math.Log(v)
	}
	ch, err := NewCholesky(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.LogDet(); !almostEq(got, want, 1e-12) {
		t.Fatalf("LogDet = %g, want %g", got, want)
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomSPD(rng, 10)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	matricesEqual(t, Mul(a, inv), Eye(10), 1e-8)
}

func TestCholeskyQuadForm(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomSPD(rng, 9)
	b := make(Vec, 9)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := Dot(b, ch.SolveVec(b))
	if got := ch.QuadForm(b); !almostEq(got, want, 1e-9) {
		t.Fatalf("QuadForm = %g, want %g", got, want)
	}
	if got := ch.QuadForm(b); got <= 0 {
		t.Fatalf("QuadForm must be positive for SPD, got %g", got)
	}
}

func TestCholeskyIndefiniteFails(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyJitterRecovers(t *testing.T) {
	// Rank-deficient PSD matrix (outer product) needs jitter.
	v := Vec{1, 2, 3}
	a := Outer(v, v)
	ch, jitter, err := NewCholeskyJitter(a, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if jitter <= 0 {
		t.Fatalf("expected positive jitter, got %g", jitter)
	}
	if ch.Size() != 3 {
		t.Fatalf("Size = %d", ch.Size())
	}
}

func TestCholeskyJitterNoOpWhenSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomSPD(rng, 6)
	_, jitter, err := NewCholeskyJitter(a, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if jitter != 0 {
		t.Fatalf("jitter = %g, want 0 for SPD input", jitter)
	}
}

func TestCholeskyJitterGivesUp(t *testing.T) {
	// A matrix with a hugely negative eigenvalue cannot be rescued by
	// tiny jitter within a couple of retries.
	a := NewFromRows([][]float64{{1, 0}, {0, -1e12}})
	if _, _, err := NewCholeskyJitter(a, 1e-12, 2); err == nil {
		t.Fatal("expected failure")
	}
}

// Property: for random SPD systems, the solve residual is tiny.
func TestCholeskySolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randomSPD(rng, n)
		b := make(Vec, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := ch.SolveVec(b)
		r := SubVec(a.MulVec(x), b)
		return Norm2(r) <= 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: log det via Cholesky matches the product of eigenvalue-free
// 2x2 analytic determinant for random SPD 2x2 matrices.
func TestCholeskyLogDet2x2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// a c; c b with a,b > c ensures SPD when a*b - c² > 0.
		c := rng.Float64()
		a := 1 + rng.Float64()
		b := 1 + rng.Float64()
		m := NewFromRows([][]float64{{a, c}, {c, b}})
		det := a*b - c*c
		if det <= 1e-9 {
			return true // skip near-singular
		}
		ch, err := NewCholesky(m)
		if err != nil {
			return false
		}
		return almostEq(ch.LogDet(), math.Log(det), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholesky200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 200)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make(Vec, 200)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SolveVec(rhs)
	}
}
