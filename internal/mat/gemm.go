package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the flop count below which Mul stays single-threaded;
// goroutine fan-out costs more than it saves on small products.
const parallelThreshold = 64 * 64 * 64

// Mul returns a·b as a new matrix. Large products are computed with a
// row-blocked goroutine fan-out over runtime.GOMAXPROCS(0) workers.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := New(a.rows, b.cols)
	flops := a.rows * a.cols * b.cols
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers < 2 || a.rows < 2 {
		mulRange(a, b, c, 0, a.rows)
		return c
	}
	if workers > a.rows {
		workers = a.rows
	}
	chunk := (a.rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.rows; lo += chunk {
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// mulRange computes rows [lo,hi) of c = a·b using an ikj loop order that
// streams rows of b, which is cache-friendly for row-major storage.
func mulRange(a, b, c *Dense, lo, hi int) {
	n := b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := c.data[i*n : (i+1)*n]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// MulT returns a·bᵀ as a new matrix without forming the transpose. Each
// output element is a dot product of two rows, which vectorizes well.
func MulT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulT shape mismatch %dx%d · (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	c := New(a.rows, b.rows)
	workers := runtime.GOMAXPROCS(0)
	flops := a.rows * a.cols * b.rows
	if flops < parallelThreshold || workers < 2 || a.rows < 2 {
		mulTRange(a, b, c, 0, a.rows)
		return c
	}
	if workers > a.rows {
		workers = a.rows
	}
	chunk := (a.rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.rows; lo += chunk {
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulTRange(a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

func mulTRange(a, b, c *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := c.data[i*b.rows : (i+1)*b.rows]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			crow[j] = s
		}
	}
}

// SyrkT returns aᵀ·a, exploiting symmetry by computing only the upper
// triangle and mirroring.
func SyrkT(a *Dense) *Dense {
	n := a.cols
	c := New(n, n)
	for k := 0; k < a.rows; k++ {
		row := a.data[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				crow[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.data[j*n+i] = c.data[i*n+j]
		}
	}
	return c
}
