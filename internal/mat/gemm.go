package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the flop count below which Mul stays single-threaded;
// goroutine fan-out costs more than it saves on small products.
const parallelThreshold = 64 * 64 * 64

// Mul returns a·b as a new matrix. Large products are computed with a
// row-blocked goroutine fan-out over runtime.GOMAXPROCS(0) workers.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := New(a.rows, b.cols)
	flops := a.rows * a.cols * b.cols
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers < 2 || a.rows < 2 {
		mulRange(a, b, c, 0, a.rows)
		return c
	}
	if workers > a.rows {
		workers = a.rows
	}
	chunk := (a.rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.rows; lo += chunk {
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// mulRange computes rows [lo,hi) of c = a·b using an ikj loop order that
// streams rows of b, which is cache-friendly for row-major storage.
func mulRange(a, b, c *Dense, lo, hi int) {
	n := b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := c.data[i*n : (i+1)*n]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
}

// MulT returns a·bᵀ as a new matrix without forming the transpose. Each
// output element is a dot product of two rows, which vectorizes well.
func MulT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulT shape mismatch %dx%d · (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	c := New(a.rows, b.rows)
	workers := runtime.GOMAXPROCS(0)
	flops := a.rows * a.cols * b.rows
	if flops < parallelThreshold || workers < 2 || a.rows < 2 {
		mulTRange(a, b, c, 0, a.rows)
		return c
	}
	if workers > a.rows {
		workers = a.rows
	}
	chunk := (a.rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.rows; lo += chunk {
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulTRange(a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

func mulTRange(a, b, c *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := c.data[i*b.rows : (i+1)*b.rows]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			crow[j] = s
		}
	}
}

// syrkPanel is the row-panel height of SyrkTBlocked: 64 rows × a few
// hundred columns of a stay resident in L1/L2 while the whole output
// triangle is updated against them.
const syrkPanel = 64

// SyrkTBlocked returns aᵀ·a like SyrkT, but streams a in cache-blocked
// row panels (the blocked-GEMM pattern of Mul): each panel of a is
// reused across every output row before the next panel is touched,
// which matters when a is tall (the n×m cross-covariance of a sparse GP
// fit at large n) and no longer fits in cache. The accumulation order
// per output element is identical to SyrkT — k strictly ascending — so
// the result is bit-identical to the unblocked kernel.
func SyrkTBlocked(a *Dense) *Dense {
	n := a.cols
	c := New(n, n)
	for k0 := 0; k0 < a.rows; k0 += syrkPanel {
		k1 := k0 + syrkPanel
		if k1 > a.rows {
			k1 = a.rows
		}
		for i := 0; i < n; i++ {
			crow := c.data[i*n : (i+1)*n]
			for k := k0; k < k1; k++ {
				row := a.data[k*n : (k+1)*n]
				vi := row[i]
				if vi == 0 {
					continue
				}
				for j := i; j < n; j++ {
					crow[j] += vi * row[j]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.data[j*n+i] = c.data[i*n+j]
		}
	}
	return c
}

// PairSqDist returns the n×m matrix of squared Euclidean distances
// between the rows of a (n×d) and the rows of b (m×d), computed with
// the same row-chunked goroutine fan-out as MulT: d²(i,j) = ‖a_i‖² +
// ‖b_j‖² − 2·a_i·b_j, clamped at zero against round-off. It is the
// cache-blocked assembly path for distance-based kernel cross matrices
// (k(a_i, b_j) = f(d²)), turning the O(n·m·d) kernel evaluation loop
// into a panel-friendly product plus a cheap row/column norm pass.
func PairSqDist(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: PairSqDist shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	bn := make([]float64, b.rows)
	for j := 0; j < b.rows; j++ {
		row := b.data[j*b.cols : (j+1)*b.cols]
		var s float64
		for _, v := range row {
			s += v * v
		}
		bn[j] = s
	}
	c := New(a.rows, b.rows)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*a.cols : (i+1)*a.cols]
			var an float64
			for _, v := range arow {
				an += v * v
			}
			crow := c.data[i*b.rows : (i+1)*b.rows]
			for j := 0; j < b.rows; j++ {
				brow := b.data[j*b.cols : (j+1)*b.cols]
				var dot float64
				for k, av := range arow {
					dot += av * brow[k]
				}
				d2 := an + bn[j] - 2*dot
				if d2 < 0 {
					d2 = 0
				}
				crow[j] = d2
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	flops := a.rows * a.cols * b.rows
	if flops < parallelThreshold || workers < 2 || a.rows < 2 {
		fill(0, a.rows)
		return c
	}
	if workers > a.rows {
		workers = a.rows
	}
	chunk := (a.rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.rows; lo += chunk {
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// SyrkT returns aᵀ·a, exploiting symmetry by computing only the upper
// triangle and mirroring.
func SyrkT(a *Dense) *Dense {
	n := a.cols
	c := New(n, n)
	for k := 0; k < a.rows; k++ {
		row := a.data[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				crow[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.data[j*n+i] = c.data[i*n+j]
		}
	}
	return c
}
