// Package mat provides the dense linear algebra used throughout the
// repository: matrices, vectors, goroutine-parallel products, Cholesky /
// LU / QR / eigen factorizations, and triangular solves. It is a
// deliberately small, stdlib-only kernel sized for Gaussian-process
// workloads (dense symmetric positive-definite systems with a few
// thousand unknowns) — the computational substrate behind every GP fit
// in the paper's §III machinery.
//
// # Key types
//
//   - Dense / Vec: row-major matrix and vector with raw-slice access for
//     hot loops.
//   - Cholesky: A = L·Lᵀ with SolveVec/LogDet/QuadForm, plus Extended,
//     the O(n²) bordered update behind online GP conditioning.
//     NewCholeskyParallel is the goroutine-parallel blocked variant for
//     large systems; NewCholeskyJitter retries with diagonal jitter for
//     nearly singular covariances.
//   - Mul / MulT / SyrkT / MulVec and friends: parallel products used by
//     kernels and predictions.
//
// # Observability
//
// Every factorization counts itself: mat.cholesky.count,
// mat.cholesky.duration, mat.cholesky.size and
// mat.cholesky.parallel.count (see OBSERVABILITY.md). Cholesky calls are
// the O(n³) unit of account for the cost argument the paper makes —
// whatever an AL iteration does, it shows up here.
//
// # Concurrency contract
//
// Dense and Vec are plain data with no internal locking: concurrent
// reads are safe, concurrent writes (or a write racing reads) are the
// caller's responsibility. A constructed *Cholesky is immutable and safe
// for concurrent use. NewCholeskyParallel manages its own worker
// goroutines and is safe to call from multiple goroutines on distinct
// inputs.
package mat
