package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{1, 2, 5, 20} {
		a := randomDense(rng, n, n)
		a.AddDiag(float64(n)) // keep well-conditioned
		xTrue := make(Vec, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		f, err := NewLU(a)
		if err != nil {
			t.Fatal(err)
		}
		x := f.SolveVec(b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-9) {
				t.Fatalf("n=%d: x[%d]=%g want %g", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randomDense(rng, 8, 8)
	a.AddDiag(8)
	b := randomDense(rng, 8, 3)
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b)
	matricesEqual(t, Mul(a, x), b, 1e-9)
}

func TestLUDet(t *testing.T) {
	// 2x2 analytic determinant.
	a := NewFromRows([][]float64{{3, 1}, {2, 5}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 13, 1e-12) {
		t.Fatalf("Det = %g, want 13", f.Det())
	}
	// Permutation changes the sign correctly.
	p := NewFromRows([][]float64{{0, 1}, {1, 0}})
	fp, err := NewLU(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fp.Det(), -1, 1e-12) {
		t.Fatalf("permutation Det = %g, want -1", fp.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewFromRows([][]float64{{0, 1}, {1, 0}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveVec(Vec{3, 7})
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestCondEst1(t *testing.T) {
	// Identity: condition number 1.
	c, err := CondEst1(Eye(5))
	if err != nil {
		t.Fatal(err)
	}
	if c < 1-1e-12 || c > 1.5 {
		t.Fatalf("cond(I) estimate = %g", c)
	}
	// Badly scaled diagonal: cond = 1e8; the estimator must see most
	// of it.
	d := Eye(4)
	d.Set(0, 0, 1e8)
	c, err = CondEst1(d)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1e7 {
		t.Fatalf("cond estimate %g for a 1e8-conditioned matrix", c)
	}
}

func TestQRSolveLSExact(t *testing.T) {
	// Square well-conditioned system: LS solution equals the exact one.
	rng := rand.New(rand.NewSource(62))
	a := randomDense(rng, 6, 6)
	a.AddDiag(6)
	xTrue := make(Vec, 6)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-9) {
			t.Fatalf("x[%d] = %g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestQROverdetermined(t *testing.T) {
	// Overdetermined noisy linear fit: QR must match the normal
	// equations solved by Cholesky.
	rng := rand.New(rand.NewSource(63))
	m, n := 50, 3
	a := randomDense(rng, m, n)
	b := make(Vec, m)
	for i := range b {
		b[i] = 2*a.At(i, 0) - a.At(i, 1) + 0.5*a.At(i, 2) + 0.01*rng.NormFloat64()
	}
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	// Normal equations reference.
	ata := SyrkT(a)
	aty := a.MulVecT(b)
	ch, err := NewCholesky(ata)
	if err != nil {
		t.Fatal(err)
	}
	ref := ch.SolveVec(aty)
	for i := range x {
		if !almostEq(x[i], ref[i], 1e-8) {
			t.Fatalf("QR %v vs normal equations %v", x, ref)
		}
	}
	// The LS residual must not be improvable by the reference.
	if Residual(a, x, b) > Residual(a, ref, b)+1e-10 {
		t.Fatal("QR residual worse than normal equations")
	}
}

func TestQRShapeValidation(t *testing.T) {
	if _, err := NewQR(New(2, 3)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: rank deficient.
	a := NewFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveLS(Vec{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRRMatchesProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := randomDense(rng, 7, 4)
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	// RᵀR must equal AᵀA (since QᵀQ = I).
	lhs := Mul(r.T(), r)
	rhs := SyrkT(a)
	matricesEqual(t, lhs, rhs, 1e-10)
}

func TestSymEigenDiagonal(t *testing.T) {
	d := New(3, 3)
	d.Set(0, 0, 3)
	d.Set(1, 1, 1)
	d.Set(2, 2, 2)
	vals, vecs, err := SymEigen(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-12) {
			t.Fatalf("vals = %v", vals)
		}
	}
	if vecs.Rows() != 3 {
		t.Fatal("vecs shape")
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := randomSPD(rng, 10)
	vals, vecs, err := SymEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A·v_i = λ_i·v_i for each eigenpair.
	for i := 0; i < 10; i++ {
		v := make(Vec, 10)
		for r := 0; r < 10; r++ {
			v[r] = vecs.At(r, i)
		}
		av := a.MulVec(v)
		for r := range av {
			if !almostEq(av[r], vals[i]*v[r], 1e-8) {
				t.Fatalf("eigenpair %d violated at row %d: %g vs %g", i, r, av[r], vals[i]*v[r])
			}
		}
	}
	// SPD ⇒ all eigenvalues positive, ascending order.
	for i, v := range vals {
		if v <= 0 {
			t.Fatalf("non-positive eigenvalue %g", v)
		}
		if i > 0 && v < vals[i-1] {
			t.Fatal("eigenvalues not ascending")
		}
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := SymEigen(a, 0); err == nil {
		t.Fatal("expected asymmetry error")
	}
}

func TestEffectiveRank(t *testing.T) {
	vals := []float64{1e-12, 1e-6, 0.5, 1}
	if got := EffectiveRank(vals, 1e-8); got != 3 {
		t.Fatalf("EffectiveRank = %d, want 3", got)
	}
	if EffectiveRank(nil, 1e-8) != 0 {
		t.Fatal("empty should be 0")
	}
	if EffectiveRank([]float64{-1, 0}, 1e-8) != 0 {
		t.Fatal("non-positive λmax should be 0")
	}
}

func TestCholeskyExtended(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	// Build an (n+1)x(n+1) SPD matrix, factorize the leading n×n block,
	// extend, and compare against the direct factorization.
	n := 8
	full := randomSPD(rng, n+1)
	lead := New(n, n)
	for i := 0; i < n; i++ {
		copy(lead.RawRow(i), full.RawRow(i)[:n])
	}
	border := make(Vec, n)
	for i := 0; i < n; i++ {
		border[i] = full.At(i, n)
	}
	chLead, err := NewCholesky(lead)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := chLead.Extended(border, full.At(n, n))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewCholesky(full)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, ext.L(), direct.L(), 1e-9)
	if ext.Size() != n+1 {
		t.Fatalf("Size = %d", ext.Size())
	}
}

func TestCholeskyExtendedRejectsIndefinite(t *testing.T) {
	ch, err := NewCholesky(Eye(2))
	if err != nil {
		t.Fatal(err)
	}
	// Border that makes the matrix indefinite: c < |L⁻¹b|².
	if _, err := ch.Extended(Vec{3, 4}, 1); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v", err)
	}
}

// Property: LU determinant matches the Cholesky-based determinant for SPD
// matrices (det = exp(LogDet)).
func TestLUvsCholeskyDetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		lu, err1 := NewLU(a)
		ch, err2 := NewCholesky(a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(math.Log(lu.Det()), ch.LogDet(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLU100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 100, 100)
	a.AddDiag(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLU(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyExtended200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 200)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	border := make(Vec, 200)
	for i := range border {
		border[i] = 0.01 * rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Extended(border, 300); err != nil {
			b.Fatal(err)
		}
	}
}
