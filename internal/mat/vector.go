package mat

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector. Most routines treat it as a plain slice
// with linear-algebra helpers attached.
type Vec []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Dot returns vᵀw.
func Dot(v, w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vec) float64 {
	// Scaled accumulation avoids overflow for extreme magnitudes.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		a := math.Abs(x)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of v.
func NormInf(v Vec) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// Axpy sets y = a*x + y and returns y.
func Axpy(a float64, x, y Vec) Vec {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += a * xv
	}
	return y
}

// ScaleVec multiplies every entry of v by a in place and returns v.
func ScaleVec(a float64, v Vec) Vec {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AddVec returns x + y as a new vector.
func AddVec(x, y Vec) Vec {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AddVec length mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Vec, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// SubVec returns x - y as a new vector.
func SubVec(x, y Vec) Vec {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: SubVec length mismatch %d vs %d", len(x), len(y)))
	}
	out := make(Vec, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// MulVec returns m·v as a new vector.
func (m *Dense) MulVec(v Vec) Vec {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", m.rows, m.cols, len(v)))
	}
	out := make(Vec, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns mᵀ·v as a new vector without forming the transpose.
func (m *Dense) MulVecT(v Vec) Vec {
	if m.rows != len(v) {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch %dx%d ᵀ· %d", m.rows, m.cols, len(v)))
	}
	out := make(Vec, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		vi := v[i]
		if vi == 0 {
			continue
		}
		for j, a := range row {
			out[j] += a * vi
		}
	}
	return out
}

// Outer returns the outer product x yᵀ as a new matrix.
func Outer(x, y Vec) *Dense {
	m := New(len(x), len(y))
	for i, xv := range x {
		row := m.data[i*len(y) : (i+1)*len(y)]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return m
}
