package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is an obviously correct reference product.
func naiveMul(a, b *Dense) *Dense {
	c := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func matricesEqual(t *testing.T, got, want *Dense, tol float64) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("shape %dx%d vs %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := range got.data {
		if !almostEq(got.data[i], want.data[i], tol) {
			t.Fatalf("element %d: got %g want %g", i, got.data[i], want.data[i])
		}
	}
}

func TestMulSmall(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	matricesEqual(t, c, want, 0)
}

func TestMulRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 7, 3)
	b := randomDense(rng, 3, 5)
	matricesEqual(t, Mul(a, b), naiveMul(a, b), 1e-12)
}

func TestMulParallelMatchesSerial(t *testing.T) {
	// Size large enough to cross parallelThreshold.
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 90, 80)
	b := randomDense(rng, 80, 90)
	matricesEqual(t, Mul(a, b), naiveMul(a, b), 1e-11)
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 6, 6)
	matricesEqual(t, Mul(a, Eye(6)), a, 0)
	matricesEqual(t, Mul(Eye(6), a), a, 0)
}

func TestMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(rng, 9, 4)
	b := randomDense(rng, 6, 4)
	matricesEqual(t, MulT(a, b), naiveMul(a, b.T()), 1e-12)
}

func TestMulTParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomDense(rng, 70, 80)
	b := randomDense(rng, 75, 80)
	matricesEqual(t, MulT(a, b), naiveMul(a, b.T()), 1e-11)
}

func TestSyrkT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomDense(rng, 8, 5)
	got := SyrkT(a)
	want := naiveMul(a.T(), a)
	matricesEqual(t, got, want, 1e-12)
	if !got.IsSymmetric(0) {
		t.Fatal("SyrkT result not exactly symmetric")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small shapes.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		a := randomDense(rng, r, k)
		b := randomDense(rng, k, c)
		lhs := Mul(a, b).T()
		rhs := Mul(b.T(), a.T())
		for i := range lhs.data {
			if !almostEq(lhs.data[i], rhs.data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix-vector product agrees with matrix-matrix against a
// one-column matrix.
func TestMulVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		a := randomDense(rng, r, c)
		v := make(Vec, c)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		bcol := New(c, 1)
		for i, x := range v {
			bcol.Set(i, 0, x)
		}
		got := a.MulVec(v)
		want := Mul(a, bcol)
		for i := range got {
			if !almostEq(got[i], want.At(i, 0), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomDense(rng, 128, 128)
	y := randomDense(rng, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMul512Parallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomDense(rng, 512, 512)
	y := randomDense(rng, 512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
