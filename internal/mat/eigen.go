package mat

import (
	"fmt"
	"math"
)

// SymEigen computes all eigenvalues (ascending) and eigenvectors of a
// symmetric matrix with the cyclic Jacobi method. Eigenvectors are the
// columns of the returned matrix. Used for kernel-spectrum diagnostics:
// the eigenvalue decay of a covariance matrix reveals the effective
// degrees of freedom a GP has, and near-zero eigenvalues flag numerical
// trouble before a Cholesky fails.
func SymEigen(a *Dense, maxSweeps int) (vals []float64, vecs *Dense, err error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: SymEigen of non-square %dx%d", a.rows, a.cols))
	}
	if !a.IsSymmetric(1e-10 * (1 + a.MaxAbs())) {
		return nil, nil, fmt.Errorf("mat: SymEigen requires a symmetric matrix")
	}
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	n := a.rows
	w := a.Clone()
	v := Eye(n)
	d := w.data

	off := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += d[i*n+j] * d[i*n+j]
			}
		}
		return math.Sqrt(2 * s)
	}

	tol := 1e-12 * (1 + w.MaxAbs()) * float64(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if off() < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := d[p*n+q]
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app, aqq := d[p*n+p], d[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Rotate rows/columns p, q of W.
				for k := 0; k < n; k++ {
					akp, akq := d[k*n+p], d[k*n+q]
					d[k*n+p] = c*akp - s*akq
					d[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := d[p*n+k], d[q*n+k]
					d[p*n+k] = c*apk - s*aqk
					d[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				vd := v.data
				for k := 0; k < n; k++ {
					vkp, vkq := vd[k*n+p], vd[k*n+q]
					vd[k*n+p] = c*vkp - s*vkq
					vd[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	if off() >= tol*10 {
		return nil, nil, fmt.Errorf("mat: Jacobi eigensolver did not converge in %d sweeps", maxSweeps)
	}

	vals = w.Diag()
	// Sort ascending with matching eigenvector columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[idx[j]] < vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	vecs = New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			vecs.data[r*n+newCol] = v.data[r*n+oldCol]
		}
	}
	return sortedVals, vecs, nil
}

// EffectiveRank returns the number of eigenvalues above tol·λ_max —
// the spectrum-based conditioning diagnostic for covariance matrices.
func EffectiveRank(vals []float64, tol float64) int {
	if len(vals) == 0 {
		return 0
	}
	lmax := vals[len(vals)-1]
	if lmax <= 0 {
		return 0
	}
	count := 0
	for _, v := range vals {
		if v > tol*lmax {
			count++
		}
	}
	return count
}
