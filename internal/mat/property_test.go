package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSPD returns a random well-conditioned n x n SPD matrix: BᵀB scaled
// to O(1) entries plus a diagonal shift that keeps the smallest
// eigenvalue comfortably positive.
func randSPD(rng *rand.Rand, n int) *Dense {
	b := New(n, n)
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	a := SyrkT(b)
	a.Scale(1 / float64(n))
	a.AddDiag(0.5 + rng.Float64())
	return a
}

// recompose returns L·Lᵀ.
func recompose(l *Dense) *Dense { return MulT(l, l) }

// maxAbsDiff returns max |a_ij − b_ij|.
func maxAbsDiff(a, b *Dense) float64 {
	var mx float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > mx {
				mx = d
			}
		}
	}
	return mx
}

// TestCholeskyRecomposeProperty: for random seeded SPD matrices of every
// size 1..64, the factor satisfies L·Lᵀ ≈ A.
func TestCholeskyRecomposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 64; n++ {
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxAbsDiff(recompose(ch.L()), a); d > 1e-10 {
			t.Errorf("n=%d: |L·Lᵀ − A|∞ = %g", n, d)
		}
		// The factor must be lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if ch.L().At(i, i) <= 0 {
				t.Errorf("n=%d: nonpositive diagonal at %d", n, i)
			}
			for j := i + 1; j < n; j++ {
				if ch.L().At(i, j) != 0 {
					t.Errorf("n=%d: nonzero upper element (%d,%d)", n, i, j)
				}
			}
		}
	}
}

// TestCholeskyBlockedMatchesUnblocked: the parallel blocked factorization
// agrees with the unblocked kernel across sizes 1..64 and block sizes
// that hit every panel-boundary case (n < nb, n = k·nb, n = k·nb ± 1).
func TestCholeskyBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 64; n++ {
		a := randSPD(rng, n)
		ref, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, nb := range []int{1, 2, 3, 4, 7, 8, 16, 31, 32, 33} {
			got, err := NewCholeskyParallel(a, nb)
			if err != nil {
				t.Fatalf("n=%d nb=%d: %v", n, nb, err)
			}
			if d := maxAbsDiff(got.L(), ref.L()); d > 1e-10 {
				t.Errorf("n=%d nb=%d: blocked vs unblocked |ΔL|∞ = %g", n, nb, d)
			}
		}
	}
}

// TestRankOneUpdateProperty: updating the factor of A with v equals
// recomputing the factor of A + v·vᵀ within 1e-10, across sizes and
// seeds.
func TestRankOneUpdateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 64; n++ {
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		v := make(Vec, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		up := ch.RankOneUpdate(v)

		want := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want.Set(i, j, want.At(i, j)+v[i]*v[j])
			}
		}
		ref, err := NewCholesky(want)
		if err != nil {
			t.Fatalf("n=%d recompute: %v", n, err)
		}
		if d := maxAbsDiff(up.L(), ref.L()); d > 1e-10 {
			t.Errorf("n=%d: update vs recompute |ΔL|∞ = %g", n, d)
		}
		if d := maxAbsDiff(recompose(up.L()), want); d > 1e-10 {
			t.Errorf("n=%d: |L'·L'ᵀ − (A+vvᵀ)|∞ = %g", n, d)
		}
	}
}

// TestRankOneDowndateProperty: downdating an updated factor with the same
// vector recovers the original factor, and downdating directly matches a
// recomputation of A − v·vᵀ when that matrix stays SPD.
func TestRankOneDowndateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for n := 1; n <= 64; n++ {
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		v := make(Vec, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		down, err := ch.RankOneUpdate(v).RankOneDowndate(v)
		if err != nil {
			t.Fatalf("n=%d: downdate of update failed: %v", n, err)
		}
		if d := maxAbsDiff(down.L(), ch.L()); d > 1e-9 {
			t.Errorf("n=%d: update∘downdate drift |ΔL|∞ = %g", n, d)
		}
	}
}

// TestRankOneDowndateRejectsIndefinite: removing a vector that breaks
// positive definiteness must fail rather than emit NaNs.
func TestRankOneDowndateRejectsIndefinite(t *testing.T) {
	a := Eye(4)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// I − 4·e₀e₀ᵀ has eigenvalue −3.
	if _, err := ch.RankOneDowndate(Vec{2, 0, 0, 0}); err == nil {
		t.Fatal("downdate to an indefinite matrix succeeded")
	}
}

// TestExtendedMatchesRefactorization: the bordered O(n²) extension equals
// refactorizing the bordered matrix, across sizes — the mat-level
// guarantee behind gp.UpdateWithPoint.
func TestExtendedMatchesRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for n := 1; n <= 48; n++ {
		a := randSPD(rng, n+1)
		// Split the bordered matrix into its leading block and border.
		lead := New(n, n)
		for i := 0; i < n; i++ {
			copy(lead.RawRow(i), a.RawRow(i)[:n])
		}
		border := make(Vec, n)
		for i := 0; i < n; i++ {
			border[i] = a.At(i, n)
		}
		ch, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ext, err := ch.Extended(border, a.At(n, n))
		if err != nil {
			t.Fatalf("n=%d: Extended: %v", n, err)
		}
		ref, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: refactorize: %v", n, err)
		}
		if d := maxAbsDiff(ext.L(), ref.L()); d > 1e-10 {
			t.Errorf("n=%d: Extended vs refactorization |ΔL|∞ = %g", n, d)
		}
	}
}
