package mat

import (
	"fmt"
	"math"
)

// QR is a Householder QR factorization A = Q·R of an m×n matrix with
// m ≥ n. Q is applied implicitly through the stored reflectors; R is
// upper triangular. QR backs the numerically stable least-squares path
// (normal equations square the condition number; QR does not).
type QR struct {
	qr    *Dense    // Householder vectors below the diagonal, R strictly above
	beta  []float64 // reflector scalings 2/(vᵀv)
	rdiag []float64 // diagonal of R
	m, n  int
}

// NewQR factorizes a (m ≥ n required).
func NewQR(a *Dense) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("mat: QR needs rows ≥ cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	beta := make([]float64, n)
	rdiag := make([]float64, n)
	d := qr.data
	for k := 0; k < n; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, d[i*n+k])
		}
		if nrm == 0 {
			beta[k] = 0
			rdiag[k] = 0
			continue
		}
		alpha := -math.Copysign(nrm, d[k*n+k])
		// v = x − α e₁ stored in place of the column.
		d[k*n+k] -= alpha
		var vv float64
		for i := k; i < m; i++ {
			vv += d[i*n+k] * d[i*n+k]
		}
		beta[k] = 2 / vv
		rdiag[k] = alpha
		// Reflect the trailing columns: A_j ← A_j − β v (vᵀ A_j).
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += d[i*n+k] * d[i*n+j]
			}
			s *= beta[k]
			for i := k; i < m; i++ {
				d[i*n+j] -= s * d[i*n+k]
			}
		}
	}
	return &QR{qr: qr, beta: beta, rdiag: rdiag, m: m, n: n}, nil
}

// R returns the upper-triangular factor as a new n×n matrix.
func (f *QR) R() *Dense {
	r := New(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.data[i*f.n+i] = f.rdiag[i]
		for j := i + 1; j < f.n; j++ {
			r.data[i*f.n+j] = f.qr.data[i*f.n+j]
		}
	}
	return r
}

// applyQT overwrites b (length m) with Qᵀ·b by applying the reflectors
// in order.
func (f *QR) applyQT(b Vec) {
	d := f.qr.data
	for k := 0; k < f.n; k++ {
		if f.beta[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += d[i*f.n+k] * b[i]
		}
		s *= f.beta[k]
		for i := k; i < f.m; i++ {
			b[i] -= s * d[i*f.n+k]
		}
	}
}

// SolveLS returns the least-squares solution of A·x ≈ b (minimizing
// ‖Ax − b‖₂) via x = R⁻¹ (Qᵀb)[:n]. Returns ErrSingular when R has an
// (effectively) zero diagonal entry (rank-deficient A).
func (f *QR) SolveLS(b Vec) (Vec, error) {
	if len(b) != f.m {
		panic(fmt.Sprintf("mat: QR SolveLS length %d != %d", len(b), f.m))
	}
	var rmax float64
	for _, v := range f.rdiag {
		if a := math.Abs(v); a > rmax {
			rmax = a
		}
	}
	work := b.Clone()
	f.applyQT(work)
	x := make(Vec, f.n)
	d := f.qr.data
	for i := f.n - 1; i >= 0; i-- {
		s := work[i]
		for j := i + 1; j < f.n; j++ {
			s -= d[i*f.n+j] * x[j]
		}
		rii := f.rdiag[i]
		if math.Abs(rii) <= 1e-13*rmax {
			return nil, fmt.Errorf("%w: R[%d,%d] ≈ 0 in QR solve", ErrSingular, i, i)
		}
		x[i] = s / rii
	}
	return x, nil
}

// Residual returns ‖A·x − b‖₂ for a computed least-squares solution.
func Residual(a *Dense, x, b Vec) float64 {
	return Norm2(SubVec(a.MulVec(x), b))
}
