package mat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyParallelMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, n := range []int{10, 64, 130, 257} {
		a := randomSPD(rng, n)
		blocked, err := NewCholeskyParallel(a, 32)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		lb, lr := blocked.L(), ref.L()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(lb.At(i, j), lr.At(i, j), 1e-9) {
					t.Fatalf("n=%d: L[%d,%d] = %g vs %g", n, i, j, lb.At(i, j), lr.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyParallelSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 200
	a := randomSPD(rng, n)
	ch, err := NewCholeskyParallel(a, 0) // default block
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make(Vec, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x := ch.SolveVec(b)
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-7) {
			t.Fatalf("x[%d] = %g want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyParallelIndefinite(t *testing.T) {
	n := 150
	a := Eye(n)
	a.Set(n/2, n/2, -1) // indefinite deep inside a block
	if _, err := NewCholeskyParallel(a, 32); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v", err)
	}
}

// Determinism: repeated factorizations are bitwise identical regardless
// of goroutine scheduling.
func TestCholeskyParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	a := randomSPD(rng, 180)
	first, err := NewCholeskyParallel(a, 48)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		again, err := NewCholeskyParallel(a, 48)
		if err != nil {
			t.Fatal(err)
		}
		fr, ar := first.L().Raw(), again.L().Raw()
		for i := range fr {
			if fr[i] != ar[i] {
				t.Fatalf("nondeterministic at element %d", i)
			}
		}
	}
}

// Property: blocked solve residuals are tiny for random SPD systems and
// random block sizes.
func TestCholeskyParallelResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 65 + rng.Intn(100)
		nb := 8 + rng.Intn(56)
		a := randomSPD(rng, n)
		ch, err := NewCholeskyParallel(a, nb)
		if err != nil {
			return false
		}
		b := make(Vec, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := ch.SolveVec(b)
		r := SubVec(a.MulVec(x), b)
		return Norm2(r) <= 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholeskyUnblocked500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyBlocked500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholeskyParallel(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}
