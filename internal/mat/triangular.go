package mat

import "fmt"

// ForwardSubst solves L·y = b where L is lower triangular (only the lower
// triangle of l is read) and returns y.
func ForwardSubst(l *Dense, b Vec) Vec {
	n := l.rows
	if l.cols != n || len(b) != n {
		panic(fmt.Sprintf("mat: ForwardSubst shapes %dx%d, b %d", l.rows, l.cols, len(b)))
	}
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		row := l.data[i*n : i*n+i]
		s := b[i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / l.data[i*n+i]
	}
	return y
}

// BackSubstT solves Lᵀ·x = y where L is lower triangular, without forming
// the transpose, and returns x.
func BackSubstT(l *Dense, y Vec) Vec {
	n := l.rows
	if l.cols != n || len(y) != n {
		panic(fmt.Sprintf("mat: BackSubstT shapes %dx%d, y %d", l.rows, l.cols, len(y)))
	}
	x := y.Clone()
	for i := n - 1; i >= 0; i-- {
		x[i] /= l.data[i*n+i]
		xi := x[i]
		// Subtract column i of Lᵀ (= row entries l[i][0..i-1] transposed).
		for k := 0; k < i; k++ {
			x[k] -= l.data[i*n+k] * xi
		}
	}
	return x
}

// BackSubst solves U·x = b where U is upper triangular (only the upper
// triangle of u is read) and returns x.
func BackSubst(u *Dense, b Vec) Vec {
	n := u.rows
	if u.cols != n || len(b) != n {
		panic(fmt.Sprintf("mat: BackSubst shapes %dx%d, b %d", u.rows, u.cols, len(b)))
	}
	x := make(Vec, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := u.data[i*n : (i+1)*n]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// ForwardSubstMat solves L·Y = B for the matrix Y, column by column.
func ForwardSubstMat(l, b *Dense) *Dense {
	if l.rows != b.rows {
		panic(fmt.Sprintf("mat: ForwardSubstMat rows %d vs %d", l.rows, b.rows))
	}
	y := New(b.rows, b.cols)
	col := make(Vec, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		sol := ForwardSubst(l, col)
		for i := 0; i < b.rows; i++ {
			y.data[i*b.cols+j] = sol[i]
		}
	}
	return y
}
