package mat

import (
	"errors"
	"math/rand"
	"testing"
)

func TestPackCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 33} {
		a := randomSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		p := PackCholesky(c)
		if p.Size() != n {
			t.Fatalf("n=%d: packed size %d", n, p.Size())
		}
		l := c.L()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if j <= i {
					want = l.At(i, j)
				}
				if got := p.At(i, j); got != want {
					t.Fatalf("n=%d: packed L[%d,%d] = %g, dense %g", n, i, j, got, want)
				}
			}
		}
		matricesEqual(t, p.Unpack(), lowerTriangle(l), 0)
	}
}

// lowerTriangle zeroes the strict upper triangle (Cholesky keeps scratch
// values there).
func lowerTriangle(l *Dense) *Dense {
	out := New(l.Rows(), l.Cols())
	for i := 0; i < l.Rows(); i++ {
		for j := 0; j <= i; j++ {
			out.Set(i, j, l.At(i, j))
		}
	}
	return out
}

// TestTriPackedMatchesCholesky pins every solve/determinant/inverse
// method of the packed factor to the square Cholesky it was packed from:
// identical inputs, bit-identical or near-identical outputs.
func TestTriPackedMatchesCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 19
	a := randomSPD(rng, n)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	p := PackCholesky(c)

	b := make(Vec, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got, want := p.SolveVec(b), c.SolveVec(b)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SolveVec[%d]: packed %g, dense %g", i, got[i], want[i])
		}
	}
	if g, w := p.QuadForm(b), c.QuadForm(b); g != w {
		t.Fatalf("QuadForm: packed %g, dense %g", g, w)
	}
	if g, w := p.LogDet(), c.LogDet(); g != w {
		t.Fatalf("LogDet: packed %g, dense %g", g, w)
	}
	matricesEqual(t, p.Inverse(), c.Inverse(), 0)

	// ForwardSubstMat: L·Y = B column by column.
	bm := randomDense(rng, n, 3)
	y := p.ForwardSubstMat(bm)
	matricesEqual(t, Mul(lowerTriangle(c.L()), y), bm, 1e-10)
}

// TestTriPackedExtended checks the bordered update against a from-scratch
// factorization of the (n+1)×(n+1) matrix, and the non-SPD rejection.
func TestTriPackedExtended(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 14
	big := randomSPD(rng, n+1)
	a := New(n, n)
	b := make(Vec, n)
	for i := 0; i < n; i++ {
		b[i] = big.At(i, n)
		for j := 0; j < n; j++ {
			a.Set(i, j, big.At(i, j))
		}
	}
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := PackCholesky(c).Extended(b, big.At(n, n))
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := NewCholesky(big)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, ext.Unpack(), lowerTriangle(cBig.L()), 1e-10)

	// A border that breaks positive definiteness must be rejected with
	// the shared sentinel, leaving the receiver untouched.
	huge := make(Vec, n)
	for i := range huge {
		huge[i] = 1e6
	}
	p := PackCholesky(c)
	before := append(Vec(nil), p.data...)
	if _, err := p.Extended(huge, 1); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("non-SPD border: err = %v, want ErrNotPositiveDefinite", err)
	}
	for i := range before {
		if p.data[i] != before[i] {
			t.Fatal("failed Extended mutated the receiver")
		}
	}
}

// TestSyrkTBlockedBitIdentical: the cache-blocked aᵀa must match the
// unblocked kernel bit for bit (same k-ascending accumulation order) —
// the property that lets the sparse fit swap it in without perturbing
// fingerprinted traces.
func TestSyrkTBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, shape := range [][2]int{{1, 1}, {5, 3}, {syrkPanel, 7}, {syrkPanel + 1, 7}, {3*syrkPanel + 11, 23}} {
		a := randomDense(rng, shape[0], shape[1])
		got, want := SyrkTBlocked(a), SyrkT(a)
		if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
			t.Fatalf("%v: shape %dx%d", shape, got.Rows(), got.Cols())
		}
		for i := range got.data {
			if got.data[i] != want.data[i] {
				t.Fatalf("%v: element %d differs: %g vs %g", shape, i, got.data[i], want.data[i])
			}
		}
	}
}

// TestPairSqDist checks the norm-expansion distance matrix against the
// direct (a−b)² loop, on both the serial path and a size that crosses
// the goroutine fan-out threshold.
func TestPairSqDist(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, shape := range [][3]int{{3, 4, 2}, {7, 1, 3}, {160, 130, 40}} {
		n, m, d := shape[0], shape[1], shape[2]
		a, b := randomDense(rng, n, d), randomDense(rng, m, d)
		got := PairSqDist(a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				var want float64
				for k := 0; k < d; k++ {
					diff := a.At(i, k) - b.At(j, k)
					want += diff * diff
				}
				if !almostEq(got.At(i, j), want, 1e-9) {
					t.Fatalf("%v: d²(%d,%d) = %g, want %g", shape, i, j, got.At(i, j), want)
				}
			}
		}
	}

	// Identical rows: round-off in ‖a‖²+‖b‖²−2a·b can go negative; the
	// clamp must keep the result at exactly zero.
	a := randomDense(rng, 6, 5)
	d2 := PairSqDist(a, a)
	for i := 0; i < 6; i++ {
		if d2.At(i, i) != 0 {
			t.Fatalf("self-distance d²(%d,%d) = %g, want 0", i, i, d2.At(i, i))
		}
	}
}

func TestPairSqDistShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched column counts did not panic")
		}
	}()
	PairSqDist(New(2, 3), New(2, 4))
}
