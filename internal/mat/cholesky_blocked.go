package mat

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// defaultBlock is the panel width of the blocked factorization; sized so
// a panel column fits comfortably in L2 cache.
const defaultBlock = 64

// NewCholeskyParallel factorizes a symmetric positive-definite matrix
// with a right-looking blocked algorithm whose trailing-submatrix update
// — the O(n³) bulk of the work — fans out over goroutines. For small
// matrices it falls back to the unblocked kernel. nb ≤ 0 selects the
// default block size.
//
// The result is numerically equivalent to NewCholesky (identical up to
// floating-point reassociation in the trailing updates) and deterministic
// for a fixed block size: each row block is computed independently, so
// goroutine scheduling cannot change the result.
func NewCholeskyParallel(a *Dense, nb int) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Cholesky of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	if nb <= 0 {
		nb = defaultBlock
	}
	if n <= 2*nb {
		return NewCholesky(a)
	}
	choleskyCount.Inc()
	choleskyParCount.Inc()
	choleskySize.Observe(float64(n))
	startT := time.Now()
	defer func() { choleskyDur.Observe(time.Since(startT).Seconds()) }()
	w := a.Clone() // factorize in place on a working copy
	d := w.data
	workers := runtime.GOMAXPROCS(0)

	for k := 0; k < n; k += nb {
		kb := nb
		if k+kb > n {
			kb = n - k
		}
		// 1. Unblocked factorization of the diagonal block A[k:k+kb, k:k+kb].
		for i := k; i < k+kb; i++ {
			for j := k; j <= i; j++ {
				s := d[i*n+j]
				for t := k; t < j; t++ {
					s -= d[i*n+t] * d[j*n+t]
				}
				if i == j {
					if s <= 0 || math.IsNaN(s) {
						return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, i, s)
					}
					d[i*n+i] = math.Sqrt(s)
				} else {
					d[i*n+j] = s / d[j*n+j]
				}
			}
		}
		if k+kb >= n {
			break
		}
		// 2. Panel solve: L21 = A21 L11⁻ᵀ, parallel over row chunks.
		parRows(workers, k+kb, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := k; j < k+kb; j++ {
					s := d[i*n+j]
					for t := k; t < j; t++ {
						s -= d[i*n+t] * d[j*n+t]
					}
					d[i*n+j] = s / d[j*n+j]
				}
			}
		})
		// 3. Trailing update: A22 -= L21 L21ᵀ (lower triangle only),
		// parallel over row chunks — the dominant cost.
		parRows(workers, k+kb, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				li := d[i*n+k : i*n+k+kb]
				for j := k + kb; j <= i; j++ {
					lj := d[j*n+k : j*n+k+kb]
					var s float64
					for t := 0; t < kb; t++ {
						s += li[t] * lj[t]
					}
					d[i*n+j] -= s
				}
			}
		})
	}
	// Zero the strict upper triangle so L matches NewCholesky's layout.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d[i*n+j] = 0
		}
	}
	return &Cholesky{l: w, n: n}, nil
}

// parRows splits rows [lo, hi) across workers. Trailing updates cost more
// for later rows (longer inner loops), so rows are dealt in strides to
// balance load.
func parRows(workers, lo, hi int, fn func(lo, hi int)) {
	nRows := hi - lo
	if workers < 2 || nRows < 64 {
		fn(lo, hi)
		return
	}
	if workers > nRows {
		workers = nRows
	}
	chunk := (nRows + workers - 1) / workers
	var wg sync.WaitGroup
	for s := lo; s < hi; s += chunk {
		e := s + chunk
		if e > hi {
			e = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(s, e)
	}
	wg.Wait()
}
