package mat

import (
	"fmt"
	"math"
)

// TriPacked is a lower-triangular Cholesky factor in packed row-major
// storage: row i occupies data[i(i+1)/2 : i(i+1)/2+i+1]. Compared to the
// square Dense storage a Cholesky carries, packing halves the memory of
// every stored factor — and, more importantly, halves the allocation of
// every bordered Extended update, which clones the whole factor because
// fitted models are immutable snapshots (see the gp concurrency
// contract). All methods treat the receiver as read-only; Extended
// returns a new factor.
type TriPacked struct {
	n    int
	data []float64
}

// packedLen returns the packed storage size for an n×n lower triangle.
func packedLen(n int) int { return n * (n + 1) / 2 }

// PackCholesky copies the lower triangle of a Cholesky factor into
// packed storage.
func PackCholesky(c *Cholesky) *TriPacked {
	n := c.n
	t := &TriPacked{n: n, data: make([]float64, packedLen(n))}
	for i := 0; i < n; i++ {
		copy(t.row(i), c.l.data[i*n:i*n+i+1])
	}
	return t
}

// row returns row i (length i+1), aliased.
func (t *TriPacked) row(i int) []float64 {
	off := i * (i + 1) / 2
	return t.data[off : off+i+1]
}

// Size returns the order n of the factorized matrix.
func (t *TriPacked) Size() int { return t.n }

// At returns L[i,j] (zero above the diagonal).
func (t *TriPacked) At(i, j int) float64 {
	if i < 0 || i >= t.n || j < 0 || j >= t.n {
		panic(fmt.Sprintf("mat: TriPacked index (%d,%d) out of bounds %d", i, j, t.n))
	}
	if j > i {
		return 0
	}
	return t.data[i*(i+1)/2+j]
}

// Unpack materializes the factor as a square lower-triangular Dense.
func (t *TriPacked) Unpack() *Dense {
	l := New(t.n, t.n)
	for i := 0; i < t.n; i++ {
		copy(l.data[i*t.n:i*t.n+i+1], t.row(i))
	}
	return l
}

// ForwardSubstInto solves L·y = b into dst (len n). dst must not alias b.
func (t *TriPacked) ForwardSubstInto(dst, b Vec) {
	if len(b) != t.n || len(dst) != t.n {
		panic(fmt.Sprintf("mat: TriPacked ForwardSubst lengths %d,%d != %d", len(dst), len(b), t.n))
	}
	for i := 0; i < t.n; i++ {
		row := t.row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * dst[k]
		}
		dst[i] = s / row[i]
	}
}

// ForwardSubst solves L·y = b and returns y.
func (t *TriPacked) ForwardSubst(b Vec) Vec {
	y := make(Vec, t.n)
	t.ForwardSubstInto(y, b)
	return y
}

// BackSubstTInPlace solves Lᵀ·x = y in place.
func (t *TriPacked) BackSubstTInPlace(y Vec) {
	if len(y) != t.n {
		panic(fmt.Sprintf("mat: TriPacked BackSubstT length %d != %d", len(y), t.n))
	}
	for i := t.n - 1; i >= 0; i-- {
		row := t.row(i)
		y[i] /= row[i]
		yi := y[i]
		for k := 0; k < i; k++ {
			y[k] -= row[k] * yi
		}
	}
}

// SolveVec solves A·x = b (A = L·Lᵀ) and returns x in one allocation.
func (t *TriPacked) SolveVec(b Vec) Vec {
	x := make(Vec, t.n)
	t.ForwardSubstInto(x, b)
	t.BackSubstTInPlace(x)
	return x
}

// QuadForm returns bᵀ A⁻¹ b = |L⁻¹b|².
func (t *TriPacked) QuadForm(b Vec) float64 {
	y := t.ForwardSubst(b)
	return Dot(y, y)
}

// LogDet returns log det A = 2 Σ log L_ii.
func (t *TriPacked) LogDet() float64 {
	var s float64
	for i := 0; i < t.n; i++ {
		s += math.Log(t.data[i*(i+1)/2+i])
	}
	return 2 * s
}

// ForwardSubstMat solves L·Y = B column by column.
func (t *TriPacked) ForwardSubstMat(b *Dense) *Dense {
	if b.rows != t.n {
		panic(fmt.Sprintf("mat: TriPacked ForwardSubstMat rows %d != %d", b.rows, t.n))
	}
	y := New(b.rows, b.cols)
	col := make(Vec, b.rows)
	sol := make(Vec, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		t.ForwardSubstInto(sol, col)
		for i := 0; i < b.rows; i++ {
			y.data[i*b.cols+j] = sol[i]
		}
	}
	return y
}

// Inverse returns A⁻¹ as a dense matrix by solving against the identity.
func (t *TriPacked) Inverse() *Dense {
	x := New(t.n, t.n)
	e := make(Vec, t.n)
	col := make(Vec, t.n)
	for j := 0; j < t.n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		t.ForwardSubstInto(col, e)
		t.BackSubstTInPlace(col)
		for i := 0; i < t.n; i++ {
			x.data[i*t.n+j] = col[i]
		}
	}
	return x
}

// Extended returns the packed Cholesky factor of the bordered matrix
//
//	[ A  b ]
//	[ bᵀ c ]
//
// in O(n²): the packed prefix is byte-identical to the receiver (one
// bulk copy), the new row is L⁻¹b solved directly into the new storage,
// and the new pivot is √(c − |L⁻¹b|²). The single allocation is
// (n+1)(n+2)/2 floats — half the (n+1)² a square-factor border costs —
// which is what keeps the AL loop's incremental model update under the
// B/op gate in BENCH_baseline.json. Returns ErrNotPositiveDefinite when
// the bordered matrix is not SPD.
func (t *TriPacked) Extended(b Vec, diag float64) (*TriPacked, error) {
	if len(b) != t.n {
		panic(fmt.Sprintf("mat: TriPacked Extended border length %d != %d", len(b), t.n))
	}
	choleskyExtendCount.Inc()
	n := t.n
	out := &TriPacked{n: n + 1, data: make([]float64, packedLen(n+1))}
	copy(out.data, t.data)
	row := out.data[packedLen(n) : packedLen(n)+n]
	// Forward-substitute L·row = b using the shared packed prefix.
	for i := 0; i < n; i++ {
		lrow := t.row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= lrow[k] * row[k]
		}
		row[i] = s / lrow[i]
	}
	pivot := diag - Dot(row, row)
	if pivot <= 0 || math.IsNaN(pivot) {
		return nil, fmt.Errorf("%w: bordered pivot = %g", ErrNotPositiveDefinite, pivot)
	}
	out.data[packedLen(n+1)-1] = math.Sqrt(pivot)
	return out, nil
}
