package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty 0x0 matrix; use New or one of the other
// constructors to create a sized matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromData wraps data (row-major, length rows*cols) in a Dense without
// copying. Mutating the returned matrix mutates data.
func NewFromData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d entries, want %d", i, len(r), c))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds %dx%d", i, j, m.rows, m.cols))
	}
}

// RawRow returns the i'th row as a slice aliasing the matrix storage.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of bounds %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Raw returns the underlying row-major storage, aliased.
func (m *Dense) Raw() []float64 { return m.data }

// SubRows returns the half-open row range [i, j) as a view aliasing the
// matrix storage — row-major layout makes any contiguous row band a
// valid matrix without copying. Mutations are visible through both.
func (m *Dense) SubRows(i, j int) *Dense {
	if i < 0 || j < i || j > m.rows {
		panic(fmt.Sprintf("mat: row range [%d,%d) out of bounds %d", i, j, m.rows))
	}
	return &Dense{rows: j - i, cols: m.cols, data: m.data[i*m.cols : j*m.cols]}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: copy shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// T returns a new matrix that is the transpose of m.
func (m *Dense) T() *Dense {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Add sets m = m + b element-wise.
func (m *Dense) Add(b *Dense) {
	m.sameShape(b, "Add")
	for i, v := range b.data {
		m.data[i] += v
	}
}

// Sub sets m = m - b element-wise.
func (m *Dense) Sub(b *Dense) {
	m.sameShape(b, "Sub")
	for i, v := range b.data {
		m.data[i] -= v
	}
}

// Scale multiplies every element of m by s.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddDiag adds v to every diagonal element of a square matrix.
func (m *Dense) AddDiag(v float64) {
	if m.rows != m.cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += v
	}
}

// Diag returns a copy of the diagonal of a square matrix.
func (m *Dense) Diag() []float64 {
	if m.rows != m.cols {
		panic("mat: Diag on non-square matrix")
	}
	d := make([]float64, m.rows)
	for i := range d {
		d[i] = m.data[i*m.cols+i]
	}
	return d
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic("mat: Trace on non-square matrix")
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

func (m *Dense) sameShape(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// MaxAbs returns the largest absolute element value, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm1 returns the maximum absolute column sum (the induced 1-norm).
func (m *Dense) Norm1() float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(sum m_ij^2).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m + mᵀ)/2; m must be square.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.data[i*n+j] + m.data[j*n+i])
			m.data[i*n+j] = v
			m.data[j*n+i] = v
		}
	}
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	s := fmt.Sprintf("Dense %dx%d", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return s + " (elided)"
	}
	for i := 0; i < m.rows; i++ {
		s += "\n["
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%9.4g", m.data[i*m.cols+j])
		}
		s += "]"
	}
	return s
}
