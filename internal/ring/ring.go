package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member used when a config
// leaves it zero: enough for an even spread across a handful of
// replicas while keeping the ring tiny.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over node ids. Build one
// with NewRing; share it freely (all methods are read-only).
type Ring struct {
	points []point // sorted by hash
	nodes  int
}

type point struct {
	hash uint64
	node string
}

// NewRing hashes vnodes virtual points per node (DefaultVnodes when
// vnodes <= 0) onto the ring.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]point, 0, len(nodes)*vnodes), nodes: len(nodes)}
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashKey(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break on node id so the ring is a deterministic
		// function of the member set alone.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node owning key: the first virtual point clockwise
// of the key's hash. Empty rings own nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// OwnerN returns up to n DISTINCT nodes in ring-walk order starting at
// the key's owner. OwnerN(key, 2)[1] is the key's follower — and, by
// the consistent-hashing remap property, the node that becomes the
// key's owner if the current owner leaves the ring.
func (r *Ring) OwnerN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.nodes {
		n = r.nodes
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// search finds the index of the first point at or clockwise of key's
// hash.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hashKey is FNV-1a 64 followed by a 64-bit avalanche finalizer —
// stable across platforms and Go releases, which placement must be (a
// rehash on upgrade would orphan every replica). The finalizer matters:
// raw FNV-1a hashes of near-sequential ids ("c000001", "c000002", ...)
// differ by small multiples of the FNV prime, so they cluster in narrow
// arcs of the ring and can starve a node of ownership entirely.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
