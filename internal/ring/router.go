package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// Router-side metrics (see OBSERVABILITY.md).
var (
	routerForwards           = obs.C("router.forward.count")
	routerForwardErrors      = obs.C("router.forward.errors")
	routerHandoffRejects     = obs.C("router.handoff.rejects")
	routerFailovers          = obs.C("router.failover.count")
	routerFailoverNoops      = obs.C("router.failover.noops")
	routerAutoFailovers      = obs.C("router.autofailover.count")
	routerAutoFailoverErrors = obs.C("router.autofailover.errors")
	routerRejoins            = obs.C("router.rejoin.count")
)

// RouterConfig tunes the cluster router.
type RouterConfig struct {
	// Vnodes is the virtual-node count per member (DefaultVnodes).
	Vnodes int

	// Transport is the base RoundTripper under the per-node retrying
	// clients (http.DefaultTransport; tests inject chaos or partition
	// gates here).
	Transport http.RoundTripper

	// Retry tunes the retrying idempotent clients used for forwards.
	Retry resilience.TransportConfig

	// Breaker tunes the per-node circuit breakers.
	Breaker resilience.BreakerConfig

	// ForwardTimeout bounds one forwarded call (default 30s).
	ForwardTimeout time.Duration
}

// Router is the thin front of the campaign cluster: it owns the
// membership table (and its epoch), places campaigns on nodes via the
// consistent-hash ring, and forwards suggest/observe/predict/status to
// the owner through per-node retrying clients and circuit breakers.
// During a handoff (failover or migration) the affected campaign's
// traffic is shed with 503 + Retry-After; everything else keeps
// serving.
type Router struct {
	cfg RouterConfig
	mux *http.ServeMux

	mu           sync.RWMutex
	membership   Membership
	ring         *Ring
	overrides    map[string]string // campaign id → node id (migrated off natural placement)
	handoff      map[string]bool   // campaign id → mid-handoff, shed its traffic
	pendingAdopt map[string]bool   // campaign id → failover adoption failed, retry it
	campaigns    map[string]bool   // ids created through this router
	nextID       int
	clients      map[string]*http.Client
	breakers     map[string]*resilience.Breaker
	detector     *Detector
}

// NewRouter builds a router over the given members at epoch 1. Call
// PushMembership to install the table on the nodes before serving.
func NewRouter(members []Member, cfg RouterConfig) (*Router, error) {
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	m := Membership{Epoch: 1, Members: members}
	if err := m.validate(); err != nil {
		return nil, err
	}
	m.normalize()
	r := &Router{
		cfg:          cfg,
		mux:          http.NewServeMux(),
		membership:   m,
		ring:         m.ring(cfg.Vnodes),
		overrides:    make(map[string]string),
		handoff:      make(map[string]bool),
		pendingAdopt: make(map[string]bool),
		campaigns:    make(map[string]bool),
		clients:      make(map[string]*http.Client),
		breakers:     make(map[string]*resilience.Breaker),
	}
	for _, mem := range m.Members {
		r.addNodeLocked(mem.ID)
	}
	ringMembers.Set(float64(len(m.Members)))
	ringEpochGauge.Set(float64(m.Epoch))

	r.mux.HandleFunc("POST /campaigns", r.handleCreate)
	r.mux.HandleFunc("GET /campaigns", r.handleList)
	r.mux.HandleFunc("GET /campaigns/{id}", r.forwardCampaign)
	r.mux.HandleFunc("DELETE /campaigns/{id}", r.handleDelete)
	r.mux.HandleFunc("GET /campaigns/{id}/suggest", r.forwardCampaign)
	r.mux.HandleFunc("POST /campaigns/{id}/observe", r.forwardCampaign)
	r.mux.HandleFunc("POST /campaigns/{id}/predict", r.forwardCampaign)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /cluster/healthz", r.handleClusterHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	return r, nil
}

// addNodeLocked provisions the retrying client and breaker for a node.
// Callers hold r.mu (or are inside NewRouter).
func (r *Router) addNodeLocked(id string) {
	if _, ok := r.clients[id]; ok {
		return
	}
	retry := r.cfg.Retry
	if retry.Seed == 0 {
		// Distinct per-node jitter streams, still deterministic.
		retry.Seed = int64(hashKey("router:" + id))
	}
	r.clients[id] = resilience.NewClient(r.cfg.Transport, retry)
	r.breakers[id] = resilience.NewBreaker("router."+id, r.cfg.Breaker)
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// Membership returns the router's current view.
func (r *Router) Membership() Membership {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := r.membership
	out.Members = append([]Member(nil), r.membership.Members...)
	return out
}

// Owner reports which node currently serves a campaign (override first,
// ring otherwise).
func (r *Router) Owner(id string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerLocked(id)
}

func (r *Router) ownerLocked(id string) string {
	if n, ok := r.overrides[id]; ok {
		return n
	}
	return r.ring.Owner(id)
}

// PushMembership installs the router's membership table on every node.
// Nodes that cannot be reached are reported; they will reject forwards
// (split-epoch) until they catch up, which is the safe failure mode.
func (r *Router) PushMembership() error {
	m := r.Membership()
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	var errs []error
	for _, mem := range m.Members {
		if err := r.pushOne(mem, body); err != nil {
			errs = append(errs, fmt.Errorf("push membership to %s: %w", mem.ID, err))
		}
	}
	return errors.Join(errs...)
}

func (r *Router) pushOne(mem Member, body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ForwardTimeout)
	defer cancel()
	// Membership pushes deliberately omit the epoch header: they ARE the
	// epoch change.
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, mem.URL+"/internal/membership", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
	r.mu.RLock()
	client := r.clients[mem.ID]
	r.mu.RUnlock()
	if client == nil {
		return fmt.Errorf("ring: no client for node %s", mem.ID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// --- request forwarding ---

// forward proxies req to the node's base URL at path, labeling it with
// the router's epoch and running it through the node's breaker and
// retrying client. The node's response (status, Retry-After, body)
// passes through verbatim.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, nodeID, path string) {
	r.mu.RLock()
	base := r.membership.url(nodeID)
	epoch := r.membership.Epoch
	client := r.clients[nodeID]
	breaker := r.breakers[nodeID]
	r.mu.RUnlock()
	if base == "" || client == nil {
		routerForwardErrors.Inc()
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "ring: campaign owner " + nodeID + " is not a cluster member"})
		return
	}

	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(req.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
	}
	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ForwardTimeout)
	defer cancel()
	out, err := http.NewRequestWithContext(ctx, req.Method, base+path, bytes.NewReader(body))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	out.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	if key := req.Header.Get(resilience.IdempotencyHeader); key != "" {
		out.Header.Set(resilience.IdempotencyHeader, key)
	}
	out.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))

	var resp *http.Response
	doErr := breaker.Do(func() error {
		var err error
		resp, err = client.Do(out)
		if err != nil {
			return err
		}
		// 5xx responses count against the node's breaker even though
		// they pass through to the client.
		if resp.StatusCode >= 500 {
			return fmt.Errorf("ring: HTTP %d from %s", resp.StatusCode, nodeID)
		}
		return nil
	})
	routerForwards.Inc()
	if resp == nil {
		routerForwardErrors.Inc()
		var open *resilience.OpenError
		if errors.As(doErr, &open) {
			w.Header().Set("Retry-After", strconv.Itoa(int(open.RetryAfter.Seconds())+1))
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "ring: node " + nodeID + " circuit open"})
			return
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": fmt.Sprintf("ring: forward to %s failed: %v", nodeID, doErr)})
		return
	}
	defer resp.Body.Close()
	if doErr != nil {
		routerForwardErrors.Inc()
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleCreate assigns a cluster-unique campaign id, places it on the
// ring, and forwards the spec to the owner.
func (r *Router) handleCreate(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	r.nextID++
	// Router ids use a wider format than node-local ones (c%04d) so the
	// two can never collide even if a node also serves direct traffic.
	id := fmt.Sprintf("c%06d", r.nextID)
	r.campaigns[id] = true
	owner := r.ownerLocked(id)
	r.mu.Unlock()
	r.forward(w, req, owner, "/internal/campaigns/"+id)
}

// forwardCampaign routes status/suggest/observe/predict to the
// campaign's owner, shedding with 503 while the campaign is mid-handoff.
func (r *Router) forwardCampaign(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.RLock()
	inHandoff := r.handoff[id]
	owner := r.ownerLocked(id)
	r.mu.RUnlock()
	if inHandoff {
		routerHandoffRejects.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "ring: campaign " + id + " is migrating, retry"})
		return
	}
	r.forward(w, req, owner, req.URL.Path)
}

// handleDelete forwards the delete and forgets the campaign on success.
func (r *Router) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.RLock()
	owner := r.ownerLocked(id)
	r.mu.RUnlock()
	sw := &captureStatus{ResponseWriter: w}
	r.forward(sw, req, owner, req.URL.Path)
	if sw.code < 300 {
		r.mu.Lock()
		delete(r.campaigns, id)
		delete(r.overrides, id)
		delete(r.handoff, id)
		r.mu.Unlock()
	}
}

type captureStatus struct {
	http.ResponseWriter
	code int
}

func (c *captureStatus) WriteHeader(code int) {
	c.code = code
	c.ResponseWriter.WriteHeader(code)
}

// handleList fans GET /campaigns out to every node and merges the
// results in natural id order. Unreachable nodes are skipped and
// counted — the list degrades instead of erroring.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	m := r.Membership()
	var all []serve.CampaignStatus
	unreachable := 0
	for _, mem := range m.Members {
		sts, err := r.listNode(req.Context(), mem, m.Epoch)
		if err != nil {
			unreachable++
			continue
		}
		all = append(all, sts...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": all, "unreachable_nodes": unreachable})
}

func (r *Router) listNode(ctx context.Context, mem Member, epoch uint64) ([]serve.CampaignStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, mem.URL+"/campaigns", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	r.mu.RLock()
	client := r.clients[mem.ID]
	r.mu.RUnlock()
	if client == nil {
		return nil, fmt.Errorf("ring: no client for %s", mem.ID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var out struct {
		Campaigns []serve.CampaignStatus `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Campaigns, nil
}

// handleHealthz aggregates node healthz: "ok" only when every member
// answers and none is degraded.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	m := r.Membership()
	status := "ok"
	nodes := make(map[string]string, len(m.Members))
	for _, mem := range m.Members {
		st, err := r.nodeHealth(req.Context(), mem, m.Epoch)
		if err != nil {
			nodes[mem.ID] = "unreachable"
			status = "degraded"
			continue
		}
		nodes[mem.ID] = st
		if st != "ok" {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status, "epoch": m.Epoch, "nodes": nodes,
	})
}

func (r *Router) nodeHealth(ctx context.Context, mem Member, epoch uint64) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, mem.URL+"/healthz", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	r.mu.RLock()
	client := r.clients[mem.ID]
	r.mu.RUnlock()
	if client == nil {
		return "", fmt.Errorf("ring: no client for %s", mem.ID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Status, nil
}

// handleClusterHealthz reports the cluster as the self-healing layer
// sees it: the membership epoch plus, when the detector runs, every
// node's verdict (alive/suspected/dead/fenced) and suspicion score —
// including fenced nodes that are no longer members.
func (r *Router) handleClusterHealthz(w http.ResponseWriter, req *http.Request) {
	m := r.Membership()
	det := r.Detector()
	ids := make([]string, len(m.Members))
	for i, mem := range m.Members {
		ids[i] = mem.ID
	}
	out := map[string]any{
		"epoch":        m.Epoch,
		"members":      ids,
		"autofailover": det != nil,
	}
	if det != nil {
		nodes := make(map[string]any)
		for _, h := range det.Snapshot() {
			nodes[h.ID] = map[string]any{"state": h.State, "phi": h.Phi, "url": h.URL}
		}
		out["nodes"] = nodes
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.Default.WriteJSONL(w)
}

// --- membership changes ---

// Failover removes a dead node: bump the epoch, push the new table to
// the survivors, then adopt every campaign the dead node owned on its
// new owner — which, by the ring's remap property, is the follower
// already holding its replica. Because appends ack on a quorum of ONE
// follower, at replication ≥ 3 an acknowledged record may live on any
// single follower — so adoption imports the longest replica image held
// anywhere in the cluster, not just the new owner's local buffer (the
// new owner may be exactly the straggler that was marked for lazy
// resync and never healed before the owner died). Orphaned campaigns
// are in handoff (shed with 503) from the epoch bump until their
// adoption completes; every other campaign keeps serving throughout.
//
// Failing over a node that is not a member — never was, or was already
// removed by an earlier call — is an idempotent no-op: detectors,
// retrying operators, and scripts may all race to report the same
// death, and every report after the first must be safe.
func (r *Router) Failover(deadID string) error {
	r.mu.Lock()
	if r.membership.url(deadID) == "" {
		r.mu.Unlock()
		routerFailoverNoops.Inc()
		obs.Emit("router.failover.noop", map[string]any{"dead": deadID})
		return nil
	}
	var orphans []string
	for id := range r.campaigns {
		if r.ownerLocked(id) == deadID {
			orphans = append(orphans, id)
			r.handoff[id] = true
		}
	}
	for id, o := range r.overrides {
		if o == deadID {
			// The override target is gone; fall back to ring placement.
			delete(r.overrides, id)
		}
	}
	nm := r.membership.without(deadID)
	nm.Epoch = r.membership.Epoch + 1
	r.membership = nm
	r.ring = nm.ring(r.cfg.Vnodes)
	ringMembers.Set(float64(len(nm.Members)))
	ringEpochGauge.Set(float64(nm.Epoch))
	r.mu.Unlock()

	serve.SortCampaignIDs(orphans)
	routerFailovers.Inc()
	obs.Emit("router.failover", map[string]any{
		"dead": deadID, "epoch": nm.Epoch, "orphans": len(orphans),
	})

	// Survivors must install the new epoch before adoptions (the adopt
	// request itself is epoch-labeled).
	pushErr := r.PushMembership()

	var errs []error
	if pushErr != nil {
		errs = append(errs, pushErr)
	}
	for _, id := range orphans {
		newOwner := r.Owner(id)
		if err := r.postInternal(newOwner, "/internal/adopt/"+id, r.bestReplicaImage(id)); err != nil {
			errs = append(errs, fmt.Errorf("adopt %s on %s: %w", id, newOwner, err))
			// Keep the campaign in handoff (shed, not wrong) and mark the
			// adoption for retry: the node is already out of the
			// membership, so a second Failover call would no-op past it.
			r.mu.Lock()
			r.pendingAdopt[id] = true
			r.mu.Unlock()
			continue
		}
		r.mu.Lock()
		delete(r.handoff, id)
		r.mu.Unlock()
	}
	return errors.Join(errs...)
}

// adoptPending retries failover adoptions that failed on an earlier
// attempt (the node was already removed, so Failover itself no-ops).
// Campaigns stay in handoff until their adoption lands. Like Failover,
// each retry adopts from the longest replica image the cluster still
// holds — the current owner may hold none at all (it could have been
// reconciled on a rejoin since the failed attempt), while the real
// replica sits on the original failover target.
func (r *Router) adoptPending() error {
	r.mu.RLock()
	ids := make([]string, 0, len(r.pendingAdopt))
	for id := range r.pendingAdopt {
		ids = append(ids, id)
	}
	r.mu.RUnlock()
	if len(ids) == 0 {
		return nil
	}
	serve.SortCampaignIDs(ids)
	var errs []error
	for _, id := range ids {
		owner := r.Owner(id)
		if err := r.postInternal(owner, "/internal/adopt/"+id, r.bestReplicaImage(id)); err != nil {
			errs = append(errs, fmt.Errorf("adopt %s on %s: %w", id, owner, err))
			continue
		}
		r.mu.Lock()
		delete(r.pendingAdopt, id)
		delete(r.handoff, id)
		r.mu.Unlock()
	}
	return errors.Join(errs...)
}

// bestReplicaImage fetches the campaign's replica buffer from every
// current member and returns the image with the most records. With the
// quorum-of-1 ack rule an acknowledged record is only guaranteed to be
// on SOME follower, so failover adoption must consult all of them: the
// new owner alone may be a straggler whose lazy resync never happened.
// Best-effort by design — unreachable nodes are skipped, and nil (no
// replica found anywhere) lets the adopting node fall back to its own
// local buffer, which is never worse than the pre-fetch behavior.
func (r *Router) bestReplicaImage(id string) []byte {
	m := r.Membership()
	var best []byte
	for _, mem := range m.Members {
		data, err := r.getInternal(mem.ID, "/internal/replica/"+id)
		if err != nil || len(data) == 0 {
			continue
		}
		if bytes.Count(data, []byte("\n")) > bytes.Count(best, []byte("\n")) {
			best = data
		}
	}
	return best
}

// isMember reports whether a node is in the current membership.
func (r *Router) isMember(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.membership.url(id) != ""
}

// autoFailover is the detector's recovery entry point: run the Failover
// path for a condemned node, or — when an earlier attempt already
// removed it — retry whatever adoptions that attempt left pending. Safe
// to call repeatedly; the detector does exactly that until it succeeds.
func (r *Router) autoFailover(deadID string) error {
	if !r.isMember(deadID) {
		if err := r.adoptPending(); err != nil {
			routerAutoFailoverErrors.Inc()
			return err
		}
		return nil
	}
	if err := r.Failover(deadID); err != nil {
		routerAutoFailoverErrors.Inc()
		return err
	}
	routerAutoFailovers.Inc()
	obs.Emit("router.autofailover", map[string]any{"dead": deadID})
	return nil
}

// Migrate moves one campaign to an explicit node: release on the owner,
// export its journal, adopt on the target, drop the stale source copy.
// The campaign is in handoff (shed with 503) for the duration.
func (r *Router) Migrate(id, to string) error {
	r.mu.Lock()
	if r.membership.url(to) == "" {
		r.mu.Unlock()
		return fmt.Errorf("ring: migrate to unknown node %q", to)
	}
	if !r.campaigns[id] {
		r.mu.Unlock()
		return fmt.Errorf("ring: unknown campaign %q", id)
	}
	from := r.ownerLocked(id)
	if from == to {
		r.mu.Unlock()
		return nil
	}
	r.handoff[id] = true
	r.mu.Unlock()

	// A release 404 is fine on retry: a previous attempt already stopped
	// the campaign on the source.
	if err := r.postInternal(from, "/internal/release/"+id, nil); err != nil && !errors.Is(err, errNotFoundStatus) {
		r.mu.Lock()
		delete(r.handoff, id)
		r.mu.Unlock()
		return fmt.Errorf("ring: release %s on %s: %w", id, from, err)
	}
	data, err := r.getInternal(from, "/internal/export/"+id)
	if err != nil {
		return fmt.Errorf("ring: export %s from %s: %w (campaign held in handoff)", id, from, err)
	}
	if err := r.postInternal(to, "/internal/adopt/"+id, data); err != nil {
		return fmt.Errorf("ring: adopt %s on %s: %w (campaign held in handoff)", id, to, err)
	}
	// Best effort: the source's journal is stale the moment the target
	// owns the campaign.
	if err := r.deleteInternal(from, "/internal/journal/"+id); err != nil {
		obs.Emit("router.migrate.stale", map[string]any{"campaign": id, "node": from, "err": err.Error()})
	}
	r.mu.Lock()
	if r.ring.Owner(id) == to {
		// Moving a campaign back to its natural placement needs no
		// override — and leaving none keeps the minimal-remap property
		// alive for the next failover.
		delete(r.overrides, id)
	} else {
		r.overrides[id] = to
	}
	delete(r.handoff, id)
	r.mu.Unlock()
	obs.Emit("router.migrate", map[string]any{"campaign": id, "from": from, "to": to})
	return nil
}

// Rejoin admits a node (back) into the membership at a new epoch: a
// fenced node that healed, or a restarted node on a fresh port. The
// node is first reconciled — told which campaigns the router still
// places on it, so it drops every stale journal, replica buffer, and
// running actor left over from before it was fenced — and only then
// added to the ring. Every live campaign is pinned to its current owner
// before the ring changes — including campaigns awaiting a retried
// failover adoption, whose pin keeps the adoption aimed at the node
// holding their replica instead of the freshly wiped newcomer — so
// readmission re-places nothing implicitly; campaigns flow back to the
// node through explicit Migrate calls in rebalance, replaying journals
// with fingerprint verification.
func (r *Router) Rejoin(m Member) error {
	if m.ID == "" || m.URL == "" {
		return fmt.Errorf("ring: rejoin with empty id or url")
	}
	r.mu.Lock()
	if r.membership.url(m.ID) == m.URL {
		r.mu.Unlock()
		return nil // already a member at this URL
	}
	r.addNodeLocked(m.ID)
	keep := make([]string, 0)
	for id := range r.campaigns {
		if r.ownerLocked(id) == m.ID {
			keep = append(keep, id)
		}
	}
	r.mu.Unlock()
	serve.SortCampaignIDs(keep)
	if err := r.reconcile(m, keep); err != nil {
		return fmt.Errorf("ring: reconcile %s before rejoin: %w", m.ID, err)
	}

	r.mu.Lock()
	if r.membership.url(m.ID) == m.URL {
		r.mu.Unlock()
		return nil // lost a race with another rejoin of the same node
	}
	for id := range r.campaigns {
		if r.handoff[id] && !r.pendingAdopt[id] {
			// Mid-Migrate: Migrate itself pins the destination when it
			// completes. Campaigns in pendingAdopt ARE pinned — their
			// pre-rejoin owner is the failover target holding the replica,
			// and letting the ring swap re-place them (possibly onto the
			// just-reconciled, hence empty, rejoining node) would strand
			// the retried adoption on a node with nothing to adopt.
			continue
		}
		if _, ok := r.overrides[id]; !ok {
			r.overrides[id] = r.ring.Owner(id)
		}
	}
	nm := r.membership.with(m)
	nm.Epoch = r.membership.Epoch + 1
	r.membership = nm
	r.ring = nm.ring(r.cfg.Vnodes)
	ringMembers.Set(float64(len(nm.Members)))
	ringEpochGauge.Set(float64(nm.Epoch))
	det := r.detector
	r.mu.Unlock()

	routerRejoins.Inc()
	obs.Emit("router.rejoin", map[string]any{"node": m.ID, "epoch": nm.Epoch})

	var errs []error
	if err := r.PushMembership(); err != nil {
		errs = append(errs, err)
	}
	if det != nil {
		det.readmit(m)
	}
	if err := r.rebalance(m.ID); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// reconcile tells a node which campaigns it still serves; the node
// releases, removes, and clears everything else. The request is
// deliberately NOT epoch-labeled: a fenced node sits at its old epoch
// and must accept this one call so it can clean up before readmission.
func (r *Router) reconcile(m Member, keep []string) error {
	body, err := json.Marshal(map[string][]string{"keep": keep})
	if err != nil {
		return err
	}
	r.mu.RLock()
	client := r.clients[m.ID]
	r.mu.RUnlock()
	if client == nil {
		return fmt.Errorf("ring: no client for node %s", m.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+"/internal/reconcile", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
	req.Header.Set(resilience.IdempotencyHeader, "reconcile:"+m.ID)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// rebalance moves campaigns onto a (re)admitted node: first everything
// whose natural ring placement is that node, then — while the load gap
// justifies it — the smallest campaigns from the most loaded node. Each
// move is a full Migrate (release → export → adopt with fingerprint-
// verified journal replay), so a failure strands nothing.
func (r *Router) rebalance(toID string) error {
	r.mu.Lock()
	for id, o := range r.overrides {
		if r.ring.Owner(id) == o {
			delete(r.overrides, id) // pin became redundant after the ring change
		}
	}
	var home []string
	for id := range r.campaigns {
		if r.handoff[id] || r.pendingAdopt[id] {
			continue
		}
		if r.ring.Owner(id) == toID && r.ownerLocked(id) != toID {
			home = append(home, id)
		}
	}
	r.mu.Unlock()
	serve.SortCampaignIDs(home)

	var errs []error
	moved := 0
	for _, id := range home {
		if err := r.Migrate(id, toID); err != nil {
			errs = append(errs, err)
			continue
		}
		moved++
	}
	// Load-aware top-up: keep pulling from the most loaded node while it
	// holds at least two more campaigns than the newcomer. Each move
	// shrinks the gap by two, so the loop terminates.
	for len(errs) == 0 {
		id, from, ok := r.nextRebalanceMove(toID)
		if !ok {
			break
		}
		if err := r.Migrate(id, toID); err != nil {
			errs = append(errs, fmt.Errorf("rebalance %s from %s: %w", id, from, err))
			break
		}
		moved++
	}
	obs.Emit("router.rebalance", map[string]any{"node": toID, "moved": moved})
	return errors.Join(errs...)
}

// nextRebalanceMove picks the smallest campaign id on the most loaded
// node, if that node holds ≥2 more campaigns than toID.
func (r *Router) nextRebalanceMove(toID string) (id, from string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counts := make(map[string]int, len(r.membership.Members))
	for _, mem := range r.membership.Members {
		counts[mem.ID] = 0
	}
	owners := make(map[string]string, len(r.campaigns))
	for cid := range r.campaigns {
		if r.handoff[cid] || r.pendingAdopt[cid] {
			continue
		}
		o := r.ownerLocked(cid)
		owners[cid] = o
		counts[o]++
	}
	if _, isMem := counts[toID]; !isMem {
		return "", "", false
	}
	top, topCount := "", -1
	for _, mem := range r.membership.Members {
		if mem.ID == toID {
			continue
		}
		if c := counts[mem.ID]; c > topCount {
			top, topCount = mem.ID, c
		}
	}
	if top == "" || topCount < counts[toID]+2 {
		return "", "", false
	}
	for cid, o := range owners {
		if o != top {
			continue
		}
		if id == "" || cid < id {
			id = cid
		}
	}
	if id == "" {
		return "", "", false
	}
	return id, top, true
}

// EnableAutoFailover starts the accrual failure detector over the
// current membership. Idempotent: a second call returns the running
// detector. Stop it with Close.
func (r *Router) EnableAutoFailover(cfg DetectorConfig) *Detector {
	r.mu.Lock()
	if r.detector != nil {
		d := r.detector
		r.mu.Unlock()
		return d
	}
	base := r.cfg.Transport
	if base == nil {
		base = http.DefaultTransport
	}
	members := append([]Member(nil), r.membership.Members...)
	d := newDetector(r, cfg, base, members)
	r.detector = d
	r.mu.Unlock()
	d.start()
	return d
}

// Detector returns the running failure detector (nil when autonomous
// failover is not enabled).
func (r *Router) Detector() *Detector {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.detector
}

// Close stops the router's background work (the failure detector). The
// router itself is just an http.Handler and needs no further teardown.
func (r *Router) Close() {
	r.mu.RLock()
	d := r.detector
	r.mu.RUnlock()
	if d != nil {
		d.Stop()
	}
}

// errNotFoundStatus marks an internal call that returned HTTP 404.
var errNotFoundStatus = errors.New("ring: HTTP 404")

func (r *Router) internalDo(method, nodeID, path string, body []byte) ([]byte, error) {
	r.mu.RLock()
	base := r.membership.url(nodeID)
	epoch := r.membership.Epoch
	client := r.clients[nodeID]
	r.mu.RUnlock()
	if base == "" || client == nil {
		return nil, fmt.Errorf("ring: node %q is not a member", nodeID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
	req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	// Adoption and release are idempotent by construction; say so, so
	// the retrying transport may replay them.
	req.Header.Set(resilience.IdempotencyHeader, method+":"+nodeID+path)
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s %s on %s", errNotFoundStatus, method, path, nodeID)
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("ring: %s %s on %s: HTTP %d: %s", method, path, nodeID, resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, nil
}

func (r *Router) postInternal(nodeID, path string, body []byte) error {
	_, err := r.internalDo(http.MethodPost, nodeID, path, body)
	return err
}

func (r *Router) getInternal(nodeID, path string) ([]byte, error) {
	return r.internalDo(http.MethodGet, nodeID, path, nil)
}

func (r *Router) deleteInternal(nodeID, path string) error {
	_, err := r.internalDo(http.MethodDelete, nodeID, path, nil)
	return err
}
