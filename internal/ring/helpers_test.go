package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/serve"
)

// testGrid is the 1-D candidate grid the cluster tests share with the
// serve package's suites.
func testGrid() [][]float64 {
	out := make([][]float64, 12)
	for i := range out {
		out[i] = []float64{3 * float64(i) / 11}
	}
	return out
}

// testOracle is the deterministic noise-free measurement every driver
// answers suggestions with.
func testOracle(x []float64) (y, cost float64) {
	y = math.Sin(2*x[0]) + 0.5*x[0]
	return y, 1 + x[0]
}

func clientSpec(seed int64) serve.CampaignSpec {
	return serve.CampaignSpec{
		Name:       "trace",
		Source:     "client",
		Candidates: testGrid(),
		Seeds:      []int{0, 11},
		Strategy:   "variance-reduction",
		Iterations: 5,
		Restarts:   1,
		Seed:       seed,
	}
}

// refStatus runs the spec on a solo, fault-free serve.Manager and
// returns its terminal status — the reference trace (records and model
// fingerprint) every cluster-driven run of the same spec must
// reproduce exactly.
func refStatus(t *testing.T, spec serve.CampaignSpec) serve.CampaignStatus {
	t.Helper()
	mgr := serve.NewManager(serve.Config{})
	defer mgr.Shutdown(context.Background())
	c, err := mgr.Create(spec)
	if err != nil {
		t.Fatalf("reference create: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("reference run stuck")
		}
		sug, err := c.Suggest()
		if err != nil {
			st, serr := c.Status(false)
			if serr != nil {
				t.Fatalf("reference status: %v", serr)
			}
			if isTerminal(st.State) {
				break
			}
			time.Sleep(time.Millisecond)
			continue
		}
		y, cost := testOracle(sug.X)
		if err := c.Observe(sug.Seq, y, cost); err != nil {
			t.Fatalf("reference observe: %v", err)
		}
	}
	st, err := c.Status(true)
	if err != nil {
		t.Fatalf("reference status: %v", err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("reference run ended %s (err %q), want done", st.State, st.Error)
	}
	return st
}

func isTerminal(state string) bool {
	switch state {
	case serve.StateDone, serve.StateFailed, serve.StateStopped:
		return true
	}
	return false
}

// httpJSON performs one request with an optional idempotency key,
// returning transport errors for the caller to absorb (chaos runs
// expect them).
func httpJSON(client *http.Client, method, url, key string, body, out any) (int, error) {
	var rd io.Reader
	var data []byte
	if body != nil {
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
		req.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.Unmarshal(rb, out)
	}
	return resp.StatusCode, nil
}

// driveHTTP answers a campaign's suggestions through the router until
// the campaign is terminal (or maxObs observations have been
// acknowledged, when maxObs > 0). Observations carry "<id>-seq<N>"
// idempotency keys; transient failures (5xx, 429, transport errors) are
// retried, so the drive survives failovers and partitions in progress.
// At the end it asserts the acknowledged seqs are the contiguous 1..N.
func driveHTTP(t *testing.T, client *http.Client, base, id string, maxObs int) int {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	acked := make(map[int]bool)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s: drive timeout after %d acked observes", id, len(acked))
		}
		var sug serve.Suggestion
		code, err := httpJSON(client, http.MethodGet, base+"/campaigns/"+id+"/suggest", "", nil, &sug)
		switch {
		case err != nil || code >= 500 || code == http.StatusTooManyRequests:
			time.Sleep(5 * time.Millisecond)
			continue
		case code == http.StatusConflict:
			var st serve.CampaignStatus
			if c2, err2 := httpJSON(client, http.MethodGet, base+"/campaigns/"+id, "", nil, &st); err2 == nil && c2 == http.StatusOK && isTerminal(st.State) {
				assertContiguous(t, id, acked)
				return len(acked)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		case code != http.StatusOK:
			t.Fatalf("campaign %s suggest: HTTP %d", id, code)
		}
		y, cost := testOracle(sug.X)
		req := serve.ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
		key := fmt.Sprintf("%s-seq%d", id, sug.Seq)
		code, err = httpJSON(client, http.MethodPost, base+"/campaigns/"+id+"/observe", key, req, nil)
		switch {
		case err != nil:
			time.Sleep(5 * time.Millisecond)
		case code == http.StatusOK:
			acked[sug.Seq] = true
			if maxObs > 0 && len(acked) >= maxObs {
				assertContiguous(t, id, acked)
				return len(acked)
			}
		case code == http.StatusConflict, code == http.StatusServiceUnavailable,
			code == http.StatusTooManyRequests, code == http.StatusBadGateway:
			// Another pass resolves it (or the idempotency key dedups).
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("campaign %s observe seq %d: HTTP %d", id, sug.Seq, code)
		}
	}
}

func assertContiguous(t *testing.T, id string, acked map[int]bool) {
	t.Helper()
	seqs := make([]int, 0, len(acked))
	for s := range acked {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	for i, s := range seqs {
		// Contiguous from wherever this drive picked up (a fresh drive
		// starts at 1; a post-failover drive resumes mid-sequence).
		if s != seqs[0]+i {
			t.Fatalf("campaign %s: acked seqs %v are not contiguous — a suggestion was lost or double-consumed", id, seqs)
		}
	}
}

// waitTerminalHTTP polls the campaign status through the router until
// it is terminal.
func waitTerminalHTTP(t *testing.T, client *http.Client, base, id string) serve.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st serve.CampaignStatus
		code, err := httpJSON(client, http.MethodGet, base+"/campaigns/"+id, "", nil, &st)
		if err == nil && code == http.StatusOK && isTerminal(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached a terminal state (last HTTP %d, err %v)", id, code, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// expectSameTrace compares a cluster campaign's terminal status against
// the solo reference: identical fingerprint, observation count, and
// bit-identical records (compared through their canonical JSON, which
// is NaN-safe).
func expectSameTrace(t *testing.T, got, ref serve.CampaignStatus) {
	t.Helper()
	if got.State != serve.StateDone {
		t.Fatalf("campaign %s ended %s (err %q), want done", got.ID, got.State, got.Error)
	}
	if got.Fingerprint == 0 || got.Fingerprint != ref.Fingerprint {
		t.Fatalf("campaign %s fingerprint %x, reference %x — trace diverged", got.ID, got.Fingerprint, ref.Fingerprint)
	}
	if got.Observations != ref.Observations {
		t.Fatalf("campaign %s has %d observations, reference %d — an observe was lost or double-applied", got.ID, got.Observations, ref.Observations)
	}
	gj, err := json.Marshal(got.Records)
	if err != nil {
		t.Fatalf("marshal records: %v", err)
	}
	rj, err := json.Marshal(ref.Records)
	if err != nil {
		t.Fatalf("marshal reference records: %v", err)
	}
	if !bytes.Equal(gj, rj) {
		t.Fatalf("campaign %s records diverge from the reference run:\n got %s\nwant %s", got.ID, gj, rj)
	}
}

// leakTargets mirrors the serve package's leak checker: no campaign
// actor, engine, or detector heartbeat goroutine may survive the
// cluster's shutdown.
var leakTargets = []string{
	"serve.(*Campaign).actor",
	"serve.(*Campaign).engine",
	"ring.(*Detector).watch",
}

func leakedCampaignGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		for _, target := range leakTargets {
			if strings.Contains(g, target) {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

func checkLeaked(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		stacks := leakedCampaignGoroutines()
		if len(stacks) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%d campaign goroutine(s) leaked past cluster shutdown:\n%s",
				len(stacks), strings.Join(stacks, "\n\n"))
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
