package ring

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// stubNode is a minimal node impersonation for detector tests: it
// answers pings (unless downed), accepts membership pushes and
// reconciles, and records what it was told.
type stubNode struct {
	id    string
	srv   *httptest.Server
	down  atomic.Bool
	epoch atomic.Uint64

	pings      atomic.Int64
	reconciles atomic.Int64
}

func newStubNode(t *testing.T, id string) *stubNode {
	t.Helper()
	s := &stubNode{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/ping", func(w http.ResponseWriter, r *http.Request) {
		s.pings.Add(1)
		if s.down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"node": s.id, "epoch": s.epoch.Load()})
	})
	mux.HandleFunc("PUT /internal/membership", func(w http.ResponseWriter, r *http.Request) {
		var m Membership
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		s.epoch.Store(m.Epoch)
		writeJSON(w, http.StatusOK, map[string]uint64{"epoch": m.Epoch})
	})
	mux.HandleFunc("POST /internal/reconcile", func(w http.ResponseWriter, r *http.Request) {
		s.reconciles.Add(1)
		writeJSON(w, http.StatusOK, map[string]int{"released": 0, "removed": 0, "replicas_cleared": 0})
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// detectorRig builds a router over stub nodes with a fake-clock
// detector at aggressive thresholds: with a 100ms interval and an
// all-pong warmup the mean gap is 100ms, so φ crosses SuspectPhi=1 on
// the 3rd consecutive miss (φ≈1.30) and DeadPhi=2 on the 5th (φ≈2.17).
func detectorRig(t *testing.T, stubs ...*stubNode) (*Router, *faults.FakeClock, func()) {
	t.Helper()
	members := make([]Member, len(stubs))
	for i, s := range stubs {
		members[i] = Member{ID: s.id, URL: s.srv.URL}
	}
	r, err := NewRouter(members, testRouterCfg())
	if err != nil {
		t.Fatalf("new router: %v", err)
	}
	if err := r.PushMembership(); err != nil {
		t.Fatalf("push membership: %v", err)
	}
	fc := faults.NewFakeClock(time.Unix(0, 0))
	r.EnableAutoFailover(DetectorConfig{
		Interval:    100 * time.Millisecond,
		PingTimeout: 5 * time.Second, // real-time bound; stubs answer instantly
		Window:      8,
		SuspectPhi:  1,
		DeadPhi:     2,
		RejoinAfter: 2,
		Clock:       fc,
	})
	t.Cleanup(r.Close)
	// round advances one heartbeat interval and waits until every watch
	// loop has finished the round's work and parked on the next timer —
	// the synchronization that makes detector tests sleep-free AND
	// deterministic under -race.
	n := len(stubs)
	fc.BlockUntil(n)
	round := func() {
		fc.Advance(100 * time.Millisecond)
		fc.BlockUntil(n)
	}
	return r, fc, round
}

func detectorState(t *testing.T, r *Router, id string) NodeHealth {
	t.Helper()
	for _, h := range r.Detector().Snapshot() {
		if h.ID == id {
			return h
		}
	}
	t.Fatalf("detector has no target %q", id)
	return NodeHealth{}
}

// TestDetectorStateMachine walks one node through the full autonomous
// lifecycle — alive → suspected → dead (auto-failover, epoch bump) →
// fenced → rejoined (epoch bump) — with every transition driven by the
// fake clock, no real sleeps, and no manual Failover call anywhere.
func TestDetectorStateMachine(t *testing.T) {
	a, b := newStubNode(t, "n1"), newStubNode(t, "n2")
	r, _, round := detectorRig(t, a, b)

	autoBefore := obs.C("router.autofailover.count").Value()
	rejoinsBefore := obs.C("router.rejoin.count").Value()
	suspectedBefore := obs.C("ring.detector.suspected").Value()
	phiBefore := obs.H("ring.detector.phi").Count()

	for i := 0; i < 3; i++ {
		round() // warmup: all pongs, mean gap = interval
	}
	if st := detectorState(t, r, "n1"); st.State != "alive" {
		t.Fatalf("after warmup n1 is %q, want alive", st.State)
	}

	a.down.Store(true)
	round() // miss 1: φ≈0.43
	round() // miss 2: φ≈0.87
	if st := detectorState(t, r, "n1"); st.State != "alive" {
		t.Fatalf("two missed heartbeats already moved n1 to %q", st.State)
	}
	round() // miss 3: φ≈1.30 ≥ SuspectPhi
	st := detectorState(t, r, "n1")
	if st.State != "suspected" {
		t.Fatalf("after 3 misses n1 is %q (φ=%.2f), want suspected", st.State, st.Phi)
	}
	if st.Phi < 1 || st.Phi > 2 {
		t.Fatalf("suspicion φ=%.2f after 3 misses, want within [1, 2)", st.Phi)
	}
	if got := obs.C("ring.detector.suspected").Value(); got != suspectedBefore+1 {
		t.Fatalf("ring.detector.suspected went %v -> %v, want +1", suspectedBefore, got)
	}
	// Suspicion is not a membership change.
	if m := r.Membership(); m.Epoch != 1 || len(m.Members) != 2 {
		t.Fatalf("suspicion moved the membership to epoch %d with %d members", m.Epoch, len(m.Members))
	}

	round() // miss 4: φ≈1.74
	round() // miss 5: φ≈2.17 ≥ DeadPhi → autonomous failover + fence
	if got := obs.C("router.autofailover.count").Value(); got != autoBefore+1 {
		t.Fatalf("router.autofailover.count went %v -> %v, want +1", autoBefore, got)
	}
	if st := detectorState(t, r, "n1"); st.State != "fenced" {
		t.Fatalf("after auto-failover n1 is %q, want fenced", st.State)
	}
	m := r.Membership()
	if m.Epoch != 2 || len(m.Members) != 1 || m.Members[0].ID != "n2" {
		t.Fatalf("after auto-failover membership is epoch %d %v, want epoch 2 [n2]", m.Epoch, m.Members)
	}
	if got := b.epoch.Load(); got != 2 {
		t.Fatalf("survivor n2 installed epoch %d, want 2", got)
	}
	// The condemned node never saw the new epoch: it is fenced out, not
	// split-brained.
	if got := a.epoch.Load(); got != 1 {
		t.Fatalf("fenced node n1 installed epoch %d — the epoch leaked across the fence", got)
	}
	if got := obs.H("ring.detector.phi").Count(); got <= phiBefore {
		t.Fatal("no suspicion scores were recorded in ring.detector.phi")
	}

	// Heal: RejoinAfter consecutive pongs readmit the node at a fresh
	// epoch, reconciled first.
	a.down.Store(false)
	round() // pong streak 1
	if st := detectorState(t, r, "n1"); st.State != "fenced" {
		t.Fatalf("one pong already moved fenced n1 to %q", st.State)
	}
	round() // pong streak 2 → rejoin
	if got := obs.C("router.rejoin.count").Value(); got != rejoinsBefore+1 {
		t.Fatalf("router.rejoin.count went %v -> %v, want +1", rejoinsBefore, got)
	}
	if st := detectorState(t, r, "n1"); st.State != "alive" {
		t.Fatalf("after rejoin n1 is %q, want alive", st.State)
	}
	m = r.Membership()
	if m.Epoch != 3 || len(m.Members) != 2 {
		t.Fatalf("after rejoin membership is epoch %d with %d members, want epoch 3 with 2", m.Epoch, len(m.Members))
	}
	if got := a.reconciles.Load(); got != 1 {
		t.Fatalf("rejoining node was reconciled %d times, want exactly 1", got)
	}
	if got := a.epoch.Load(); got != 3 {
		t.Fatalf("rejoined n1 is at epoch %d, want 3", got)
	}
}

// TestDetectorRecoversSuspect pins the false-positive path: a node that
// misses a few heartbeats but answers again before DeadPhi goes back to
// alive — no failover, no epoch change, nothing disturbed.
func TestDetectorRecoversSuspect(t *testing.T) {
	a, b := newStubNode(t, "n1"), newStubNode(t, "n2")
	r, _, round := detectorRig(t, a, b)

	failoversBefore := obs.C("router.failover.count").Value()
	recoveredBefore := obs.C("ring.detector.recovered").Value()

	for i := 0; i < 3; i++ {
		round()
	}
	a.down.Store(true)
	for i := 0; i < 3; i++ {
		round() // up to φ≈1.30: suspected, not dead
	}
	if st := detectorState(t, r, "n1"); st.State != "suspected" {
		t.Fatalf("n1 is %q mid-flap, want suspected", st.State)
	}
	a.down.Store(false)
	round()
	st := detectorState(t, r, "n1")
	if st.State != "alive" || st.Phi != 0 {
		t.Fatalf("recovered n1 is %q with φ=%.2f, want alive with φ=0", st.State, st.Phi)
	}
	if got := obs.C("ring.detector.recovered").Value(); got != recoveredBefore+1 {
		t.Fatalf("ring.detector.recovered went %v -> %v, want +1", recoveredBefore, got)
	}
	if got := obs.C("router.failover.count").Value(); got != failoversBefore {
		t.Fatal("a recovered suspect still triggered a failover")
	}
	if m := r.Membership(); m.Epoch != 1 || len(m.Members) != 2 {
		t.Fatalf("a flap changed the membership: epoch %d, %d members", m.Epoch, len(m.Members))
	}
}
