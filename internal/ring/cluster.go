package ring

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
)

// ClusterConfig sizes an in-process cluster: N replica nodes plus a
// router, each on its own real TCP listener — the topology alserve
// -replicas boots and the chaos suite aims faults at.
type ClusterConfig struct {
	// Replicas is the node count (minimum 1).
	Replicas int

	// Replication is how many copies of each campaign's journal exist,
	// owner included (default 2 — owner plus one follower; clamped to
	// Replicas). Appends ack after the owner plus a quorum of one
	// follower hold the record.
	Replication int

	// Detector, when non-nil, enables autonomous failure detection and
	// self-healing: the router heartbeats every node, fails over
	// condemned ones, and rejoins them when they heal. Nil keeps
	// failover operator-driven.
	Detector *DetectorConfig

	// RouterAddr is the router's listen address (default "127.0.0.1:0",
	// an ephemeral loopback port — what in-process tests want; alserve
	// passes its -addr here). Nodes always listen on ephemeral loopback
	// ports: the router is the only public front.
	RouterAddr string

	// Dir, when set, gives each node a DirStore under Dir/<nodeID>;
	// otherwise nodes keep journals in per-node MemStores (replication
	// still ships them to followers).
	Dir string

	// Serve is the per-node manager template (Store and CheckpointDir
	// are overridden per node).
	Serve serve.Config

	// Server is the per-node HTTP front template.
	Server serve.ServerConfig

	// Router tunes the router (its Transport is wrapped with the
	// cluster's partition gate and chaos layer).
	Router RouterConfig

	// Chaos injects seeded network faults into router→node calls.
	Chaos faults.NetworkConfig

	// ShipChaos injects seeded network faults into node→node shipping.
	ShipChaos faults.NetworkConfig

	// ShipTimeout bounds one ship/sync call (NodeConfig.ShipTimeout).
	ShipTimeout time.Duration
}

// Cluster is a running in-process fleet. Kill and Partition make it a
// deterministic chaos rig: both act on real listeners and transports,
// so failure behavior in tests is the behavior a deployment would see.
type Cluster struct {
	cfg      ClusterConfig
	shipBase http.RoundTripper

	router    *Router
	routerLn  net.Listener
	routerSrv *http.Server

	mu     sync.Mutex
	nodes  map[string]*clusterNode
	order  []string
	hostID map[string]string // listener host:port → node id, for the partition gate
}

type clusterNode struct {
	node        *Node
	srv         *http.Server
	url         string
	partitioned atomic.Bool
	killed      bool
}

// StartCluster boots the fleet: nodes first, then the membership push,
// then campaign resume, then the router listener.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replication < 2 {
		cfg.Replication = 2
	}
	if cfg.Replication > cfg.Replicas {
		cfg.Replication = cfg.Replicas
	}
	c := &Cluster{
		cfg:    cfg,
		nodes:  make(map[string]*clusterNode),
		hostID: make(map[string]string),
	}

	var shipBase http.RoundTripper = http.DefaultTransport
	if cfg.ShipChaos != (faults.NetworkConfig{}) {
		shipBase = faults.WrapRoundTripper(shipBase, faults.NewNet(cfg.ShipChaos))
	}
	c.shipBase = shipBase

	var members []Member
	var listeners []net.Listener
	for i := 0; i < cfg.Replicas; i++ {
		id := fmt.Sprintf("n%d", i+1)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("ring: listen for node %s: %w", id, err)
		}
		n := NewNode(c.nodeConfig(id))
		url := "http://" + ln.Addr().String()
		cn := &clusterNode{node: n, url: url, srv: &http.Server{Handler: n}}
		c.nodes[id] = cn
		c.order = append(c.order, id)
		c.hostID[ln.Addr().String()] = id
		members = append(members, Member{ID: id, URL: url})
		listeners = append(listeners, ln)
	}

	rcfg := cfg.Router
	base := rcfg.Transport
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.Chaos != (faults.NetworkConfig{}) {
		base = faults.WrapRoundTripper(base, faults.NewNet(cfg.Chaos))
	}
	rcfg.Transport = &partitionGate{cluster: c, base: base}
	router, err := NewRouter(members, rcfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.router = router

	for i, ln := range listeners {
		go c.nodes[c.order[i]].srv.Serve(ln)
	}
	if err := router.PushMembership(); err != nil {
		c.Close()
		return nil, fmt.Errorf("ring: initial membership push: %w", err)
	}
	for _, id := range c.order {
		if _, err := c.nodes[id].node.Manager().ResumeAll(); err != nil {
			c.Close()
			return nil, fmt.Errorf("ring: resume on %s: %w", id, err)
		}
	}

	if cfg.Detector != nil {
		router.EnableAutoFailover(*cfg.Detector)
	}

	raddr := cfg.RouterAddr
	if raddr == "" {
		raddr = "127.0.0.1:0"
	}
	rln, err := net.Listen("tcp", raddr)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("ring: listen for router: %w", err)
	}
	c.routerLn = rln
	c.routerSrv = &http.Server{Handler: router}
	go c.routerSrv.Serve(rln)
	return c, nil
}

// nodeConfig builds one node's config from the cluster template.
func (c *Cluster) nodeConfig(id string) NodeConfig {
	scfg := c.cfg.Serve
	scfg.Store = nil
	if c.cfg.Dir != "" {
		scfg.CheckpointDir = filepath.Join(c.cfg.Dir, id)
	} else {
		scfg.CheckpointDir = ""
	}
	return NodeConfig{
		ID:          id,
		Serve:       scfg,
		Server:      c.cfg.Server,
		ShipTimeout: c.cfg.ShipTimeout,
		Followers:   c.cfg.Replication - 1,
		Client:      &http.Client{Transport: c.shipBase},
	}
}

// URL is the router's base URL — the cluster's public front.
func (c *Cluster) URL() string { return "http://" + c.routerLn.Addr().String() }

// Router exposes the router for failover/migration control.
func (c *Cluster) Router() *Router { return c.router }

// NodeIDs lists the nodes in boot order.
func (c *Cluster) NodeIDs() []string { return append([]string(nil), c.order...) }

// Node returns a node by id (nil when unknown).
func (c *Cluster) Node(id string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cn := c.nodes[id]; cn != nil {
		return cn.node
	}
	return nil
}

// NodeURL returns a node's base URL ("" when unknown).
func (c *Cluster) NodeURL(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cn := c.nodes[id]; cn != nil {
		return cn.url
	}
	return ""
}

// Kill abruptly stops a node: shipping is cut first (so followers see
// exactly what a real crash would have sent — nothing more), then the
// listener and all live connections drop, then the node's goroutines
// are reaped so in-process tests stay leak-free. The dead node's
// campaigns are failed over by Router.Failover — either the operator's
// (or the test's) explicit call, or, with ClusterConfig.Detector set,
// the failure detector once suspicion crosses the dead threshold.
func (c *Cluster) Kill(id string) error {
	c.mu.Lock()
	cn := c.nodes[id]
	if cn == nil {
		c.mu.Unlock()
		return fmt.Errorf("ring: kill of unknown node %q", id)
	}
	if cn.killed {
		c.mu.Unlock()
		return nil
	}
	cn.killed = true
	c.mu.Unlock()

	cn.node.MarkDead()
	cn.srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cn.node.Manager().Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// KillAndFailover kills the node and immediately fails its campaigns
// over to their followers.
func (c *Cluster) KillAndFailover(id string) error {
	if err := c.Kill(id); err != nil {
		return err
	}
	return c.router.Failover(id)
}

// Restart boots a previously killed node again: a fresh Node with the
// same identity and checkpoint dir on a new listener, then a router
// Rejoin — the node is reconciled, readmitted at a new epoch, and
// campaigns rebalance back to it. With a DirStore the node's journals
// survived the kill; reconcile decides which of them it may keep.
func (c *Cluster) Restart(id string) error {
	c.mu.Lock()
	cn := c.nodes[id]
	if cn == nil {
		c.mu.Unlock()
		return fmt.Errorf("ring: restart of unknown node %q", id)
	}
	if !cn.killed {
		c.mu.Unlock()
		return fmt.Errorf("ring: restart of running node %q", id)
	}
	c.mu.Unlock()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("ring: listen for restarted node %s: %w", id, err)
	}
	n := NewNode(c.nodeConfig(id))
	url := "http://" + ln.Addr().String()
	next := &clusterNode{node: n, url: url, srv: &http.Server{Handler: n}}

	c.mu.Lock()
	for host, hid := range c.hostID {
		if hid == id {
			delete(c.hostID, host)
		}
	}
	c.nodes[id] = next
	c.hostID[ln.Addr().String()] = id
	c.mu.Unlock()

	go next.srv.Serve(ln)
	return c.router.Rejoin(Member{ID: id, URL: url})
}

// Partition cuts (or heals) the network between the router and one
// node: forwarded requests fail at the transport like a dropped link,
// which the router's retrying client and breaker then absorb. Shipping
// between nodes is unaffected.
func (c *Cluster) Partition(id string, cut bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cn := c.nodes[id]
	if cn == nil {
		return fmt.Errorf("ring: partition of unknown node %q", id)
	}
	cn.partitioned.Store(cut)
	return nil
}

// Close tears the whole fleet down: detector first (stop the heartbeat
// loops before their targets vanish), then the router listener, then
// every surviving node.
func (c *Cluster) Close() error {
	var errs []error
	if c.router != nil {
		c.router.Close()
	}
	if c.routerSrv != nil {
		c.routerSrv.Close()
	}
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()
	for _, id := range ids {
		c.mu.Lock()
		cn := c.nodes[id]
		killed := cn != nil && cn.killed
		c.mu.Unlock()
		if cn == nil || killed {
			continue
		}
		if err := c.Kill(id); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// partitionGate fails requests aimed at a partitioned node before they
// touch the network.
type partitionGate struct {
	cluster *Cluster
	base    http.RoundTripper
}

func (g *partitionGate) RoundTrip(req *http.Request) (*http.Response, error) {
	g.cluster.mu.Lock()
	id := g.cluster.hostID[req.URL.Host]
	var cut bool
	if cn := g.cluster.nodes[id]; cn != nil {
		cut = cn.partitioned.Load()
	}
	g.cluster.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("ring: partition between router and %s: %w", id, errPartitioned)
	}
	return g.base.RoundTrip(req)
}

// errPartitioned marks a request dropped by an injected partition.
var errPartitioned = errors.New("ring: injected partition")
