package ring

import (
	"fmt"
	"sort"
)

// EpochHeader carries the sender's membership epoch on forwarded and
// internal requests. A node that receives a request labeled with an
// epoch other than its own rejects it (HTTP 503 + Retry-After, counted
// as ring.epoch.rejects) instead of acting on a stale — or
// future — view of the cluster.
const EpochHeader = "X-Ring-Epoch"

// Member is one node of the cluster.
type Member struct {
	// ID is the stable node identity campaigns hash against.
	ID string `json:"id"`
	// URL is the node's HTTP base (no trailing slash).
	URL string `json:"url"`
}

// Membership is an epoch-numbered view of the cluster. Epochs only move
// forward: every membership change (join, death, explicit rebalance)
// bumps the epoch, and nodes reject installs that would move theirs
// backwards. The router is the sole authority that mints epochs.
type Membership struct {
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// normalize sorts members by id so a membership is a canonical value.
func (m *Membership) normalize() {
	sort.Slice(m.Members, func(i, j int) bool { return m.Members[i].ID < m.Members[j].ID })
}

// validate rejects malformed tables before they can poison a node.
func (m *Membership) validate() error {
	seen := make(map[string]bool, len(m.Members))
	for _, mem := range m.Members {
		if mem.ID == "" || mem.URL == "" {
			return fmt.Errorf("ring: member with empty id or url")
		}
		if seen[mem.ID] {
			return fmt.Errorf("ring: duplicate member id %q", mem.ID)
		}
		seen[mem.ID] = true
	}
	return nil
}

// ring builds the consistent-hash ring for this member set.
func (m *Membership) ring(vnodes int) *Ring {
	ids := make([]string, len(m.Members))
	for i, mem := range m.Members {
		ids[i] = mem.ID
	}
	return NewRing(ids, vnodes)
}

// url returns the base URL for a node id ("" when absent).
func (m *Membership) url(id string) string {
	for _, mem := range m.Members {
		if mem.ID == id {
			return mem.URL
		}
	}
	return ""
}

// with returns a copy with mem added — or, when the id is already a
// member, its URL updated (a restarted node on a fresh port). Same
// epoch; the caller bumps it.
func (m *Membership) with(mem Member) Membership {
	out := Membership{Epoch: m.Epoch}
	replaced := false
	for _, x := range m.Members {
		if x.ID == mem.ID {
			x = mem
			replaced = true
		}
		out.Members = append(out.Members, x)
	}
	if !replaced {
		out.Members = append(out.Members, mem)
	}
	out.normalize()
	return out
}

// without returns a copy with node id removed (same epoch; the caller
// bumps it).
func (m *Membership) without(id string) Membership {
	out := Membership{Epoch: m.Epoch}
	for _, mem := range m.Members {
		if mem.ID != id {
			out.Members = append(out.Members, mem)
		}
	}
	return out
}
