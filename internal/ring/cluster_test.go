package ring

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// testRouterCfg keeps retries and breaker cooldowns test-sized.
func testRouterCfg() RouterConfig {
	return RouterConfig{
		Retry: resilience.TransportConfig{
			MaxAttempts: 5,
			Backoff:     resilience.Backoff{Base: 2 * time.Millisecond, Cap: 25 * time.Millisecond},
		},
		Breaker: resilience.BreakerConfig{Window: 10, MinSamples: 4, Cooldown: 50 * time.Millisecond},
	}
}

func startTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	cl, err := StartCluster(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(func() {
		if err := cl.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
		checkLeaked(t)
	})
	return cl
}

// createCampaign posts a spec through the router and returns the
// assigned cluster id.
func createCampaign(t *testing.T, client *http.Client, base string, spec serve.CampaignSpec) string {
	t.Helper()
	var st serve.CampaignStatus
	code, err := httpJSON(client, http.MethodPost, base+"/campaigns", "", spec, &st)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("create campaign: HTTP %d, err %v", code, err)
	}
	if st.ID == "" {
		t.Fatal("create campaign: response has no id")
	}
	return st.ID
}

// ownerAndFollower derives a campaign's placement from the router's
// current membership.
func ownerAndFollower(t *testing.T, cl *Cluster, id string) (string, string) {
	t.Helper()
	m := cl.Router().Membership()
	walk := m.ring(0).OwnerN(id, 2)
	if len(walk) != 2 {
		t.Fatalf("campaign %s: ring walk %v, want owner+follower", id, walk)
	}
	if got := cl.Router().Owner(id); got != walk[0] {
		t.Fatalf("router places %s on %s, ring says %s", id, got, walk[0])
	}
	return walk[0], walk[1]
}

// TestClusterLifecycle drives campaigns end-to-end through the router
// on a 3-replica DirStore cluster: traces match the solo reference
// bit-for-bit, the follower's shipped replica is byte-identical to the
// owner's journal, and list/healthz/delete behave as a single service.
func TestClusterLifecycle(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{
		Replicas: 3,
		Dir:      t.TempDir(),
		Router:   testRouterCfg(),
	})
	client := &http.Client{}
	shipsBefore := obs.C("ring.ship.count").Value()

	seeds := []int64{31, 32}
	ids := make([]string, len(seeds))
	for i, seed := range seeds {
		ids[i] = createCampaign(t, client, cl.URL(), clientSpec(seed))
		if want := fmt.Sprintf("c%06d", i+1); ids[i] != want {
			t.Fatalf("router assigned id %s, want %s", ids[i], want)
		}
	}

	for i, id := range ids {
		ref := refStatus(t, clientSpec(seeds[i]))
		driveHTTP(t, client, cl.URL(), id, 0)
		st := waitTerminalHTTP(t, client, cl.URL(), id)
		expectSameTrace(t, st, ref)
	}
	if obs.C("ring.ship.count").Value() <= shipsBefore {
		t.Fatal("no records were shipped to followers during the campaigns")
	}

	// The follower's replica must hold the owner's journal byte for byte
	// (the terminal line ships best-effort, so allow a short settle).
	for _, id := range ids {
		owner, follower := ownerAndFollower(t, cl, id)
		deadline := time.Now().Add(5 * time.Second)
		for {
			var exported, replicated []byte
			if resp, err := client.Get(cl.NodeURL(owner) + "/internal/export/" + id); err == nil {
				exported = readAllBody(t, resp)
			}
			if resp, err := client.Get(cl.NodeURL(follower) + "/internal/replica/" + id); err == nil {
				replicated = readAllBody(t, resp)
			}
			if len(exported) > 0 && bytes.Equal(exported, replicated) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s: follower %s replica (%d bytes) never converged to owner %s journal (%d bytes)",
					id, follower, len(replicated), owner, len(exported))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	var list struct {
		Campaigns []serve.CampaignStatus `json:"campaigns"`
	}
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns", "", nil, &list); err != nil || code != http.StatusOK {
		t.Fatalf("list: HTTP %d, err %v", code, err)
	}
	if len(list.Campaigns) != len(ids) {
		t.Fatalf("list has %d campaigns, want %d", len(list.Campaigns), len(ids))
	}

	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/healthz", "", nil, &health); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d, err %v", code, err)
	}
	if health.Status != "ok" || health.Epoch != 1 {
		t.Fatalf("healthz reports %q at epoch %d, want ok at epoch 1", health.Status, health.Epoch)
	}

	if code, err := httpJSON(client, http.MethodDelete, cl.URL()+"/campaigns/"+ids[1], "", nil, nil); err != nil || code != http.StatusOK {
		t.Fatalf("delete: HTTP %d, err %v", code, err)
	}
	if code, _ := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+ids[1], "", nil, nil); code != http.StatusNotFound &&
		code != http.StatusBadGateway {
		t.Fatalf("status of deleted campaign: HTTP %d, want 404", code)
	}
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns", "", nil, &list); err != nil || code != http.StatusOK {
		t.Fatalf("list after delete: HTTP %d, err %v", code, err)
	}
	if len(list.Campaigns) != len(ids)-1 {
		t.Fatalf("list has %d campaigns after delete, want %d", len(list.Campaigns), len(ids)-1)
	}

	// Client errors pass through the router with their original status:
	// an invalid spec is the client's fault (400), not a node failure
	// (500) — getting this wrong would also trip the node's breaker.
	if code, _ := httpJSON(client, http.MethodPost, cl.URL()+"/campaigns", "",
		serve.CampaignSpec{Source: "client"}, nil); code != http.StatusBadRequest {
		t.Fatalf("create with invalid spec: HTTP %d, want 400", code)
	}
	if code, _ := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/c999999", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("status of unknown campaign: HTTP %d, want 404", code)
	}
}

func readAllBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil
	}
	return buf.Bytes()
}

// TestClusterMigration moves a live campaign between nodes mid-drive:
// the journal image travels store-to-store, the source's copy is
// retired, and the finished trace is identical to a never-migrated run.
func TestClusterMigration(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{Replicas: 3, Router: testRouterCfg()})
	client := &http.Client{}
	ref := refStatus(t, clientSpec(33))

	id := createCampaign(t, client, cl.URL(), clientSpec(33))
	driveHTTP(t, client, cl.URL(), id, 3)

	source := cl.Router().Owner(id)
	var target string
	for _, nid := range cl.NodeIDs() {
		if nid != source {
			target = nid
			break
		}
	}
	if err := cl.Router().Migrate(id, target); err != nil {
		t.Fatalf("migrate %s from %s to %s: %v", id, source, target, err)
	}
	if got := cl.Router().Owner(id); got != target {
		t.Fatalf("after migration the router places %s on %s, want %s", id, got, target)
	}
	// The source's journal copy is retired so a later resume there
	// cannot resurrect a stale fork of the campaign.
	if resp, err := client.Get(cl.NodeURL(source) + "/internal/export/" + id); err == nil {
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusNotFound {
			t.Fatalf("source node still exports the migrated journal: HTTP %d, want 404", code)
		}
	}

	driveHTTP(t, client, cl.URL(), id, 0)
	expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), ref)
}

// TestClusterDuplicateDeliveryDuringMigration turns on duplicate and
// lost-response injection for every router→node request while a
// campaign is created, migrated mid-drive, and finished: at-least-once
// delivery plus a migration must still yield the exact reference trace.
func TestClusterDuplicateDeliveryDuringMigration(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{
		Replicas: 3,
		Router: RouterConfig{
			Retry: resilience.TransportConfig{
				MaxAttempts: 8,
				Backoff:     resilience.Backoff{Base: 2 * time.Millisecond, Cap: 25 * time.Millisecond},
			},
			// Injected faults must not trip the breaker open mid-test.
			Breaker: resilience.BreakerConfig{Window: 40, MinSamples: 40, Cooldown: 50 * time.Millisecond},
		},
		Chaos: faults.NetworkConfig{Seed: 7, DuplicateRate: 0.5, DropResponseRate: 0.2},
	})
	client := &http.Client{}
	ref := refStatus(t, clientSpec(34))
	dupsBefore := obs.C("faults.injected.dupreq").Value()
	dedupBefore := obs.C("serve.observe.duplicates").Value()

	// Create may surface an injected failure even though the node
	// registered the campaign (the duplicate send wins the race); the
	// id assignment is deterministic, so recover by polling it.
	id := "c000001"
	var st serve.CampaignStatus
	if code, err := httpJSON(client, http.MethodPost, cl.URL()+"/campaigns", "", clientSpec(34), &st); err == nil && code == http.StatusCreated {
		id = st.ID
	} else {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+id, "", nil, &st); err == nil && code == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s never materialized after chaotic create (HTTP %d, err %v)", id, code, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	driveHTTP(t, client, cl.URL(), id, 2)
	source := cl.Router().Owner(id)
	var target string
	for _, nid := range cl.NodeIDs() {
		if nid != source {
			target = nid
			break
		}
	}
	if err := cl.Router().Migrate(id, target); err != nil {
		t.Fatalf("migrate under chaos: %v", err)
	}
	driveHTTP(t, client, cl.URL(), id, 0)
	expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), ref)

	if obs.C("faults.injected.dupreq").Value() <= dupsBefore {
		t.Fatal("chaos layer injected no duplicate requests — the test exercised nothing")
	}
	if obs.C("serve.observe.duplicates").Value() <= dedupBefore {
		t.Fatal("no duplicate observe was deduplicated — at-least-once delivery was not absorbed by idempotency keys")
	}
}
