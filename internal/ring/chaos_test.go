package ring

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// seedCampaigns creates campaigns through the router until two of them
// live on different nodes, returning ids, per-id seeds, and the two
// distinguished campaigns: one whose owner the test will attack, one
// that must keep serving. References are pinned by seed via refStatus.
func seedCampaigns(t *testing.T, cl *Cluster, client *http.Client, baseSeed int64) (ids []string, seeds map[string]int64, victimID, survivorID string) {
	t.Helper()
	seeds = make(map[string]int64)
	for i := 0; i < 8; i++ {
		seed := baseSeed + int64(i)
		id := createCampaign(t, client, cl.URL(), clientSpec(seed))
		ids = append(ids, id)
		seeds[id] = seed
		if survivorID == "" && cl.Router().Owner(id) != cl.Router().Owner(ids[0]) {
			survivorID = id
		}
		if survivorID != "" && i >= 2 {
			break
		}
	}
	if survivorID == "" {
		t.Fatalf("all %d campaigns landed on one node — cannot stage the chaos scenario", len(ids))
	}
	return ids, seeds, ids[0], survivorID
}

// TestClusterChaosOwnerKillFailover is the acceptance scenario: kill
// the owner of an active campaign mid-run. Until failover the dead
// node's campaigns shed (5xx) while every other campaign keeps serving;
// after failover the campaign resumes on the follower with all
// acknowledged observations intact and finishes with the exact trace a
// never-killed run produces. Deterministic under the fixed seeds.
func TestClusterChaosOwnerKillFailover(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{Replicas: 3, Router: testRouterCfg()})
	client := &http.Client{}

	ids, seeds, attacked, survivor := seedCampaigns(t, cl, client, 21)
	refs := make(map[string]serve.CampaignStatus)
	for _, id := range ids {
		refs[id] = refStatus(t, clientSpec(seeds[id]))
	}

	// Drive every campaign partway so the kill lands mid-campaign with
	// acknowledged (hence replicated) observations at stake.
	const k = 3
	for _, id := range ids {
		if got := driveHTTP(t, client, cl.URL(), id, k); got != k {
			t.Fatalf("campaign %s: %d acked observes before the kill, want %d", id, got, k)
		}
	}

	victim := cl.Router().Owner(attacked)
	failoversBefore := obs.C("router.failover.count").Value()
	adoptsBefore := obs.C("ring.adopt.count").Value()

	if err := cl.Kill(victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}

	// The dead node's campaign sheds — an error, never a hang and never
	// a wrong answer.
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+attacked+"/suggest", "", nil, nil); err == nil && code < 500 {
		t.Fatalf("suggest on the dead node's campaign returned HTTP %d, want 5xx while unowned", code)
	}
	// Campaigns on the survivors keep serving through the outage.
	var st serve.CampaignStatus
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+survivor, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("surviving campaign %s unavailable during the outage: HTTP %d, err %v", survivor, code, err)
	}

	if err := cl.Router().Failover(victim); err != nil {
		t.Fatalf("failover of %s: %v", victim, err)
	}
	if got := obs.C("router.failover.count").Value(); got != failoversBefore+1 {
		t.Fatalf("router.failover.count went %v -> %v, want +1", failoversBefore, got)
	}
	if obs.C("ring.adopt.count").Value() <= adoptsBefore {
		t.Fatal("no campaign was adopted during failover")
	}
	m := cl.Router().Membership()
	if m.Epoch != 2 || len(m.Members) != 2 {
		t.Fatalf("post-failover membership epoch %d with %d members, want epoch 2 with 2 members", m.Epoch, len(m.Members))
	}
	for _, id := range cl.NodeIDs() {
		if id == victim {
			continue
		}
		if got := cl.Node(id).Epoch(); got != 2 {
			t.Fatalf("survivor %s is at epoch %d, want 2", id, got)
		}
	}

	// Zero acknowledged-observe loss: the adopted campaign holds exactly
	// the k observations the clients were acked for.
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+attacked, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status of failed-over campaign: HTTP %d, err %v", code, err)
	}
	if st.Observations != k {
		t.Fatalf("failed-over campaign resumed with %d observations, want %d — an acknowledged observe was lost (or invented)", st.Observations, k)
	}
	if newOwner := cl.Router().Owner(attacked); newOwner == victim {
		t.Fatalf("campaign %s still placed on the dead node %s", attacked, victim)
	}

	// Every campaign — adopted and untouched alike — finishes with the
	// reference trace: no divergence anywhere in the fleet.
	for _, id := range ids {
		driveHTTP(t, client, cl.URL(), id, 0)
		expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), refs[id])
	}
}

// TestClusterChaosRouterPartition cuts the link between the router and
// one node: that node's campaigns fail fast (retries, then the breaker)
// while the rest of the cluster serves, healthz degrades, and after the
// partition heals the isolated campaign completes with the reference
// trace — the partition caused unavailability, never divergence.
func TestClusterChaosRouterPartition(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{
		Replicas: 3,
		Router: RouterConfig{
			Retry: resilience.TransportConfig{
				MaxAttempts: 3,
				Backoff:     resilience.Backoff{Base: 2 * time.Millisecond, Cap: 10 * time.Millisecond},
			},
			Breaker: resilience.BreakerConfig{Window: 8, MinSamples: 3, Cooldown: 75 * time.Millisecond},
		},
	})
	client := &http.Client{}

	ids, seeds, isolated, survivor := seedCampaigns(t, cl, client, 41)
	refs := make(map[string]serve.CampaignStatus)
	for _, id := range ids {
		refs[id] = refStatus(t, clientSpec(seeds[id]))
	}
	for _, id := range ids {
		driveHTTP(t, client, cl.URL(), id, 2)
	}

	cut := cl.Router().Owner(isolated)
	if err := cl.Partition(cut, true); err != nil {
		t.Fatalf("partition %s: %v", cut, err)
	}

	// The isolated node's campaign sheds with an error — bounded by the
	// retry budget, never hanging, never answered from stale state.
	start := time.Now()
	code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+isolated+"/suggest", "", nil, nil)
	if err == nil && code < 500 {
		t.Fatalf("suggest across the partition returned HTTP %d, want 5xx", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("partitioned request took %v — retries are not bounded", elapsed)
	}
	// Repeated failures trip the node's breaker; subsequent requests are
	// rejected fast without touching the dead link.
	for i := 0; i < 4; i++ {
		httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+isolated+"/suggest", "", nil, nil)
	}

	// The rest of the cluster is fully live during the partition: the
	// surviving campaign runs to completion (node-to-node shipping does
	// not cross the cut link).
	driveHTTP(t, client, cl.URL(), survivor, 0)
	expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), survivor), refs[survivor])

	var health struct {
		Status string `json:"status"`
	}
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/healthz", "", nil, &health); err != nil || code != http.StatusOK {
		t.Fatalf("healthz during partition: HTTP %d, err %v", code, err)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz reports %q during a partition, want degraded", health.Status)
	}

	// No membership change happened — a partition is not a death, and
	// the epoch must not move.
	if got := cl.Router().Membership().Epoch; got != 1 {
		t.Fatalf("partition moved the epoch to %d, want 1", got)
	}

	if err := cl.Partition(cut, false); err != nil {
		t.Fatalf("heal partition: %v", err)
	}
	// After the heal (and the breaker's cooldown) every campaign —
	// including the isolated one — completes with its reference trace.
	for _, id := range ids {
		driveHTTP(t, client, cl.URL(), id, 0)
		expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), refs[id])
	}
}
