package ring

import (
	"testing"

	"repro/internal/obs"
)

// TestFailoverIdempotentNoop pins the contract the autonomous detector
// depends on: Failover of a node that is not a member — never was,
// empty, or already removed by an earlier call — returns nil without
// touching the membership, and each such call is counted as a noop.
func TestFailoverIdempotentNoop(t *testing.T) {
	a, b := newStubNode(t, "n1"), newStubNode(t, "n2")
	r, err := NewRouter([]Member{
		{ID: "n1", URL: a.srv.URL},
		{ID: "n2", URL: b.srv.URL},
	}, testRouterCfg())
	if err != nil {
		t.Fatalf("new router: %v", err)
	}
	if err := r.PushMembership(); err != nil {
		t.Fatalf("push membership: %v", err)
	}

	// One real failover first, so "already removed" is a genuine case.
	failoversBefore := obs.C("router.failover.count").Value()
	if err := r.Failover("n1"); err != nil {
		t.Fatalf("first failover: %v", err)
	}
	if got := obs.C("router.failover.count").Value(); got != failoversBefore+1 {
		t.Fatalf("router.failover.count went %v -> %v, want +1", failoversBefore, got)
	}
	wantEpoch := r.Membership().Epoch
	wantMembers := len(r.Membership().Members)

	cases := []struct {
		name string
		dead string
	}{
		{"already removed", "n1"},
		{"never a member", "nX"},
		{"empty id", ""},
		{"already removed, again", "n1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			noopsBefore := obs.C("router.failover.noops").Value()
			failsBefore := obs.C("router.failover.count").Value()
			if err := r.Failover(tc.dead); err != nil {
				t.Fatalf("Failover(%q) = %v, want nil no-op", tc.dead, err)
			}
			if got := obs.C("router.failover.noops").Value(); got != noopsBefore+1 {
				t.Fatalf("router.failover.noops went %v -> %v, want +1", noopsBefore, got)
			}
			if got := obs.C("router.failover.count").Value(); got != failsBefore {
				t.Fatalf("no-op failover still counted as a real one (%v -> %v)", failsBefore, got)
			}
			m := r.Membership()
			if m.Epoch != wantEpoch || len(m.Members) != wantMembers {
				t.Fatalf("no-op failover changed the membership: epoch %d with %d members, want epoch %d with %d",
					m.Epoch, len(m.Members), wantEpoch, wantMembers)
			}
		})
	}
}
