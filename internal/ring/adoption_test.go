package ring

import (
	"bytes"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/serve"
)

// waitReplicasConverged polls until every follower's replica buffer is
// byte-identical to the owner's exported journal, returning that image.
func waitReplicasConverged(t *testing.T, cl *Cluster, client *http.Client, id, owner string, followers []string) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var exported []byte
		if resp, err := client.Get(cl.NodeURL(owner) + "/internal/export/" + id); err == nil {
			exported = readAllBody(t, resp)
		}
		converged := len(exported) > 0
		for _, f := range followers {
			var replicated []byte
			if resp, err := client.Get(cl.NodeURL(f) + "/internal/replica/" + id); err == nil {
				replicated = readAllBody(t, resp)
			}
			converged = converged && bytes.Equal(exported, replicated)
		}
		if converged {
			return exported
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s: follower replicas never converged to the owner's journal", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverAdoptsFreshestReplica pins the quorum-of-1 loss hole at
// replication ≥ 3: an acknowledged record is only guaranteed to be on
// SOME follower, and the ring's heir — the follower that inherits the
// campaign — may be exactly the straggler that missed it. Failover must
// adopt from the longest replica image the cluster still holds, not
// from the heir's local buffer alone.
func TestFailoverAdoptsFreshestReplica(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{
		Replicas:    3,
		Replication: 3,
		Router:      testRouterCfg(),
	})
	client := &http.Client{}
	ref := refStatus(t, clientSpec(91))

	id := createCampaign(t, client, cl.URL(), clientSpec(91))
	const k = 2
	driveHTTP(t, client, cl.URL(), id, k)

	m := cl.Router().Membership()
	walk := m.ring(0).OwnerN(id, 3)
	if len(walk) != 3 {
		t.Fatalf("campaign %s: ring walk %v, want owner plus two followers", id, walk)
	}
	owner, heir, other := walk[0], walk[1], walk[2]
	full := waitReplicasConverged(t, cl, client, id, owner, []string{heir, other})

	// Stage the straggler: the heir's replica loses its last record, as
	// if the ship to it failed and the owner died before the lazy resync
	// healed it. The record stays acknowledged — the other follower has
	// it, which is all the quorum-of-1 ack rule ever promised.
	cut := bytes.LastIndexByte(full[:len(full)-1], '\n')
	if cut < 0 {
		t.Fatalf("campaign %s: journal %q has a single line, cannot stage a straggler", id, full)
	}
	stale := full[:cut+1]
	req, err := http.NewRequest(http.MethodPut, cl.NodeURL(heir)+"/internal/replica/"+id, bytes.NewReader(stale))
	if err != nil {
		t.Fatalf("build replica truncation: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("truncate heir replica: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truncate heir replica: HTTP %d", resp.StatusCode)
	}

	if err := cl.KillAndFailover(owner); err != nil {
		t.Fatalf("kill+failover (%s): %v", owner, err)
	}
	if got := cl.Router().Owner(id); got != heir {
		t.Fatalf("after failover the campaign is on %s, want the heir %s", got, heir)
	}

	// Zero acked-observe loss: the heir resumed from the other
	// follower's complete image, not its own stale buffer.
	var st serve.CampaignStatus
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+id, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status after failover: HTTP %d, err %v", code, err)
	}
	if st.Observations != k {
		t.Fatalf("adopted campaign resumed with %d observations, want %d — an acknowledged observe was lost to the stale replica", st.Observations, k)
	}

	driveHTTP(t, client, cl.URL(), id, 0)
	expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), ref)
}

// TestRejoinPinsPendingAdoptToReplicaHolder pins the rejoin/retry
// interaction: a campaign whose failover adoption failed (parked in the
// pending set) must not be re-placed by a rejoin's ring swap onto the
// freshly reconciled — hence empty — rejoining node. The pin keeps the
// retried adoption aimed at the node that holds the replica.
func TestRejoinPinsPendingAdoptToReplicaHolder(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{Replicas: 3, Router: testRouterCfg()})
	client := &http.Client{}
	ref := refStatus(t, clientSpec(95))

	id := createCampaign(t, client, cl.URL(), clientSpec(95))
	const k = 2
	driveHTTP(t, client, cl.URL(), id, k)
	owner, holder := ownerAndFollower(t, cl, id)

	// Cut the router off from the failover target, then kill the owner:
	// the epoch moves but the adoption cannot land, so the campaign
	// parks in the pending set, shed with 503.
	if err := cl.Partition(holder, true); err != nil {
		t.Fatalf("partition %s: %v", holder, err)
	}
	if err := cl.Kill(owner); err != nil {
		t.Fatalf("kill %s: %v", owner, err)
	}
	if err := cl.Router().Failover(owner); err == nil {
		t.Fatal("failover with the failover target partitioned reported no failed adoption")
	}
	if code, _ := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+id, "", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("campaign awaiting adoption answered HTTP %d, want 503 shed", code)
	}

	// Heal the link and bring the dead node back. The rejoin's ring swap
	// makes the restarted node the campaign's natural placement again —
	// but its state was just wiped by reconcile, so the retried adoption
	// must stay pinned to the replica holder.
	if err := cl.Partition(holder, false); err != nil {
		t.Fatalf("heal partition %s: %v", holder, err)
	}
	if err := cl.Restart(owner); err != nil {
		t.Fatalf("restart %s: %v", owner, err)
	}
	if err := cl.Router().adoptPending(); err != nil {
		t.Fatalf("pending adoption after rejoin never landed: %v", err)
	}
	if got := cl.Router().Owner(id); got != holder {
		t.Fatalf("pending campaign adopted on %s, want the replica holder %s", got, holder)
	}

	var st serve.CampaignStatus
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+id, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status after retried adoption: HTTP %d, err %v", code, err)
	}
	if st.Observations != k {
		t.Fatalf("adopted campaign resumed with %d observations, want %d", st.Observations, k)
	}
	driveHTTP(t, client, cl.URL(), id, 0)
	expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), ref)
}

// exportFailStore injects Export failures under the shipping store —
// the degraded load path that must not desync the ship index.
type exportFailStore struct {
	serve.Store
	fail bool
}

func (s *exportFailStore) Export(id string) ([]byte, error) {
	if s.fail {
		return nil, errors.New("injected export failure")
	}
	return s.Store.Export(id)
}

// TestLoadShipIndexSurvivesExportFailure pins the ship-index origin:
// Load derives the next index from the loaded journal itself (header
// plus complete observations), so a failing Export cannot leave the
// index at 0 — where every ship would sit below the followers' counts
// and be acknowledged as a dedup, silently dropping new records.
func TestLoadShipIndexSurvivesExportFailure(t *testing.T) {
	inner := serve.NewMemStore()
	app, err := inner.Create("c000001", clientSpec(1))
	if err != nil {
		t.Fatalf("create journal: %v", err)
	}
	for i := 0; i < 3; i++ {
		o := serve.Observation{X: []float64{float64(i)}, Y: al.JSONFloat(float64(i)), Cost: 1}
		if err := app.AppendObs(o, 1, uint64(i+1)); err != nil {
			t.Fatalf("append observation %d: %v", i, err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatalf("close appender: %v", err)
	}

	n := NewNode(NodeConfig{ID: "n1"})
	ss := &shippingStore{node: n, inner: &exportFailStore{Store: inner, fail: true}}
	info, loaded, err := ss.Load("c000001")
	if err != nil {
		t.Fatalf("load through shipping store: %v", err)
	}
	defer loaded.Close()
	sa, ok := loaded.(*shippingAppender)
	if !ok {
		t.Fatalf("Load returned %T, want *shippingAppender", loaded)
	}
	if want := 1 + len(info.Observations); sa.idx != want {
		t.Fatalf("ship index after Load with a failing Export is %d, want %d (header + %d observations)",
			sa.idx, want, len(info.Observations))
	}
	if len(info.Observations) != 3 {
		t.Fatalf("loaded journal has %d observations, want 3", len(info.Observations))
	}
}
