package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Ring-side metrics (see OBSERVABILITY.md).
var (
	ringShips            = obs.C("ring.ship.count")
	ringShipErrors       = obs.C("ring.ship.errors")
	ringShipFollowerErrs = obs.C("ring.ship.follower.errors")
	ringShipDedup        = obs.C("ring.ship.dedup")
	ringSyncs            = obs.C("ring.sync.count")
	ringAdopts           = obs.C("ring.adopt.count")
	ringEpochRejects     = obs.C("ring.epoch.rejects")
	ringMembers          = obs.G("ring.members")
	ringEpochGauge       = obs.G("ring.epoch")
)

// errShipGap is the follower's "your idx skips records I don't have"
// rejection; the owner heals it with a full journal sync.
var errShipGap = errors.New("ring: ship index gap")

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// ID is the node's stable identity on the ring.
	ID string

	// Serve configures the node's campaign manager. Its Store (or the
	// DirStore built from its CheckpointDir) becomes the node's LOCAL
	// journal store; the node wraps it with the replicating store that
	// ships every record to the campaign's follower. When both are
	// empty the node keeps journals in a MemStore (still replicated —
	// durability then comes from the follower, not the local disk).
	Serve serve.Config

	// Server tunes the node's HTTP front (serve.ServerConfig defaults).
	Server serve.ServerConfig

	// ShipTimeout bounds one ship or sync call to the follower
	// (default 5s). Shipping is synchronous — it sits on the
	// observe path on purpose, that is what replicate-before-ack means —
	// so the timeout is also the worst-case observe stall a sick
	// follower can cause before the observe is rejected 503.
	ShipTimeout time.Duration

	// Followers is how many distinct followers each campaign's journal
	// ships to (default 1; clamped to the membership size). An append is
	// acknowledged after a quorum of one follower has the record;
	// laggards are healed lazily with full resyncs.
	Followers int

	// Client performs internal node-to-node calls (ship, sync). Default
	// is a plain http.Client; tests inject chaos transports.
	Client *http.Client
}

// Node is one replica of the campaign cluster: a serve.Manager whose
// journal store ships every record to the campaign's follower, plus the
// internal replication API (/internal/...) and an epoch guard on every
// request that carries EpochHeader.
type Node struct {
	// ID is the node's ring identity.
	ID string

	mgr         *serve.Manager
	srv         *serve.Server
	inner       serve.Store
	mux         *http.ServeMux
	client      *http.Client
	shipTimeout time.Duration
	followerN   int

	mu         sync.Mutex
	membership Membership
	ring       *Ring
	replicas   map[string]*replica

	// dead marks a killed node: shipping stops and the manager is about
	// to be torn down. The chaos harness sets it before stopping the
	// manager so an in-process "kill" leaks nothing to the followers
	// that a real process death would not have sent.
	dead atomic.Bool
}

// replica is the follower-side buffer for one campaign: the shipped
// journal bytes plus the count of complete records received.
type replica struct {
	buf   []byte
	count int
}

// NewNode builds a node. Call Manager().ResumeAll() after the cluster's
// first membership install to relaunch persisted campaigns.
func NewNode(cfg NodeConfig) *Node {
	n := &Node{
		ID:          cfg.ID,
		shipTimeout: cfg.ShipTimeout,
		followerN:   cfg.Followers,
		client:      cfg.Client,
		replicas:    make(map[string]*replica),
		mux:         http.NewServeMux(),
	}
	if n.shipTimeout <= 0 {
		n.shipTimeout = 5 * time.Second
	}
	if n.followerN <= 0 {
		n.followerN = 1
	}
	if n.client == nil {
		n.client = &http.Client{}
	}
	inner := cfg.Serve.Store
	if inner == nil {
		if cfg.Serve.CheckpointDir != "" {
			inner = serve.NewDirStore(cfg.Serve.CheckpointDir, cfg.Serve.TornWrites)
		} else {
			inner = serve.NewMemStore()
		}
	}
	n.inner = inner
	mcfg := cfg.Serve
	mcfg.Store = &shippingStore{node: n, inner: inner}
	mcfg.CheckpointDir = "" // the store above already covers persistence
	n.mgr = serve.NewManager(mcfg)
	n.srv = serve.NewServerWith(n.mgr, cfg.Server)

	n.mux.HandleFunc("PUT /internal/membership", n.handleMembership)
	n.mux.HandleFunc("GET /internal/ping", n.handlePing)
	n.mux.HandleFunc("POST /internal/reconcile", n.handleReconcile)
	n.mux.HandleFunc("POST /internal/campaigns/{id}", n.handleCreate)
	n.mux.HandleFunc("POST /internal/ship/{id}", n.handleShip)
	n.mux.HandleFunc("PUT /internal/replica/{id}", n.handleReplicaPut)
	n.mux.HandleFunc("GET /internal/replica/{id}", n.handleReplicaGet)
	n.mux.HandleFunc("DELETE /internal/replica/{id}", n.handleReplicaDel)
	n.mux.HandleFunc("GET /internal/export/{id}", n.handleExport)
	n.mux.HandleFunc("POST /internal/adopt/{id}", n.handleAdopt)
	n.mux.HandleFunc("POST /internal/release/{id}", n.handleRelease)
	n.mux.HandleFunc("DELETE /internal/journal/{id}", n.handleJournalDel)
	n.mux.Handle("/", n.srv)
	return n
}

// Manager exposes the node's campaign manager (shutdown, resume).
func (n *Node) Manager() *serve.Manager { return n.mgr }

// Epoch returns the node's installed membership epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.membership.Epoch
}

// MarkDead stops the node from shipping to followers. The harness calls
// it at kill time, before tearing the manager down, so an in-process
// death sends followers exactly what a real crash would have: nothing.
func (n *Node) MarkDead() { n.dead.Store(true) }

// InstallMembership adopts a membership view. Epochs only move forward;
// installing the current epoch again is a no-op refresh.
func (n *Node) InstallMembership(m Membership) error {
	if err := m.validate(); err != nil {
		return err
	}
	m.normalize()
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch < n.membership.Epoch {
		return fmt.Errorf("ring: refusing membership epoch %d over %d", m.Epoch, n.membership.Epoch)
	}
	n.membership = m
	n.ring = m.ring(0)
	ringMembers.Set(float64(len(m.Members)))
	ringEpochGauge.Set(float64(m.Epoch))
	return nil
}

// ServeHTTP implements http.Handler: the epoch guard, then the node
// routes. Requests labeled with a foreign epoch are rejected 503 so a
// router (or peer) acting on a stale membership view gets backpressure
// instead of a wrong answer; unlabeled requests (direct debugging,
// membership pushes) pass.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := r.Header.Get(EpochHeader); h != "" {
		want, err := strconv.ParseUint(h, 10, 64)
		if err != nil || want != n.Epoch() {
			ringEpochRejects.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error": fmt.Sprintf("ring: node %s is at epoch %d, request labeled %s", n.ID, n.Epoch(), h),
			})
			return
		}
	}
	n.mux.ServeHTTP(w, r)
}

// followerList returns the campaign's followers: up to Followers
// distinct nodes on the id's ring walk, skipping this node, in walk
// order. Empty when the cluster has no second node (or this node is
// dead). The first entry is the node that adopts the campaign if this
// one dies — the ring's remap property sends the key exactly there.
func (n *Node) followerList(id string) []Member {
	if n.dead.Load() {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring == nil || len(n.membership.Members) < 2 {
		return nil
	}
	var out []Member
	for _, cand := range n.ring.OwnerN(id, len(n.membership.Members)) {
		if cand == n.ID {
			continue
		}
		out = append(out, Member{ID: cand, URL: n.membership.url(cand)})
		if len(out) >= n.followerN {
			break
		}
	}
	return out
}

// handlePing answers the failure detector's heartbeat. Deliberately
// outside the epoch guard's reach (the detector sends no epoch label):
// a fenced node still answers pings — that is exactly how the detector
// learns it healed and can rejoin.
func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"node": n.ID, "epoch": n.Epoch()})
}

// handleReconcile drops everything the router no longer places on this
// node: stale actives are released, their journals removed, and every
// follower replica buffer cleared (buffers refill via resync on the
// owners' next appends). Runs before a fenced node is readmitted, so a
// node that kept serving zombie campaigns behind a partition comes back
// clean instead of split-brained. The request arrives without an epoch
// label on purpose — the node is still at its pre-fence epoch.
func (n *Node) handleReconcile(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keep []string `json:"keep"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	keep := make(map[string]bool, len(req.Keep))
	for _, id := range req.Keep {
		keep[id] = true
	}
	released := 0
	for _, c := range n.mgr.List() {
		if keep[c.ID] {
			continue
		}
		if err := n.mgr.Release(c.ID); err == nil {
			released++
		}
	}
	removed := 0
	if ids, err := n.inner.IDs(); err == nil {
		for _, id := range ids {
			if keep[id] {
				continue
			}
			if err := n.inner.Remove(id); err == nil {
				removed++
			}
		}
	}
	n.mu.Lock()
	cleared := len(n.replicas)
	n.replicas = make(map[string]*replica)
	n.mu.Unlock()
	obs.Emit("ring.reconcile", map[string]any{
		"node": n.ID, "kept": len(req.Keep), "released": released,
		"removed": removed, "replicas_cleared": cleared,
	})
	writeJSON(w, http.StatusOK, map[string]int{
		"released": released, "removed": removed, "replicas_cleared": cleared,
	})
}

// --- follower side: replica buffer handlers ---

type shipRequest struct {
	Idx  int    `json:"idx"`
	Line []byte `json:"line"`
}

// handleShip receives one journal record at index Idx. Dedup and gap
// rules make delivery idempotent: an index already held is acknowledged
// again without effect, an index that skips ahead is rejected 409 so
// the owner falls back to a full sync.
func (n *Node) handleShip(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req shipRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Idx < 0 || len(req.Line) == 0 || req.Line[len(req.Line)-1] != '\n' {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "ring: ship record must be one newline-terminated line with idx >= 0"})
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := n.replicas[id]
	if rep == nil {
		if req.Idx != 0 {
			writeJSON(w, http.StatusConflict, map[string]any{"error": "ring: no replica for campaign", "count": 0})
			return
		}
		rep = &replica{}
		n.replicas[id] = rep
	}
	switch {
	case req.Idx < rep.count:
		ringShipDedup.Inc()
	case req.Idx == rep.count:
		rep.buf = append(rep.buf, req.Line...)
		rep.count++
	default:
		writeJSON(w, http.StatusConflict, map[string]any{"error": "ring: ship index gap", "count": rep.count})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"count": rep.count})
}

// handleReplicaPut installs a full journal image, replacing whatever
// the replica held — the owner's gap-heal and adoption-time sync path.
func (n *Node) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "ring: replica image must be newline-terminated journal lines"})
		return
	}
	count := bytes.Count(data, []byte("\n"))
	n.mu.Lock()
	n.replicas[id] = &replica{buf: data, count: count}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"count": count})
}

func (n *Node) handleReplicaGet(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	rep := n.replicas[r.PathValue("id")]
	var buf []byte
	if rep != nil {
		buf = bytes.Clone(rep.buf)
	}
	n.mu.Unlock()
	if buf == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "ring: no replica"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(buf)
}

func (n *Node) handleReplicaDel(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	delete(n.replicas, r.PathValue("id"))
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"removed": r.PathValue("id")})
}

// --- owner side: create / adopt / release / export ---

// handleCreate launches a campaign under the router-assigned id.
func (n *Node) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec serve.CampaignSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	c, err := n.mgr.CreateWithID(r.PathValue("id"), spec)
	if err != nil {
		writeNodeErr(w, err)
		return
	}
	st, err := c.StatusCtx(r.Context(), false)
	if err != nil {
		writeNodeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// handleAdopt promotes a campaign onto this node: from the request body
// when it carries a journal image (migration, or a failover adoption —
// the router supplies the longest replica image the cluster holds, so
// an acked record that only ever reached one of the k-1 followers is
// not lost when a different follower inherits the campaign), otherwise
// from the local replica buffer (fallback when no replica was reachable
// anywhere; by the ring's remap property the new owner IS the old first
// follower, so its buffer is the best image the router could reach).
// Idempotent: an already-active campaign acknowledges without effect.
func (n *Node) handleAdopt(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := n.mgr.Get(id); err == nil {
		writeJSON(w, http.StatusOK, map[string]string{"adopted": id, "note": "already active"})
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(data) == 0 {
		n.mu.Lock()
		if rep := n.replicas[id]; rep != nil {
			data = bytes.Clone(rep.buf)
		}
		n.mu.Unlock()
	}
	if len(data) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "ring: no journal image to adopt (no replica and empty body)"})
		return
	}
	if err := n.inner.Import(id, data); err != nil {
		writeNodeErr(w, err)
		return
	}
	// The buffer has been promoted to primary; drop the replica entry so
	// this node does not hold both roles for the campaign.
	n.mu.Lock()
	delete(n.replicas, id)
	n.mu.Unlock()
	if err := n.mgr.ResumeOne(id); err != nil {
		writeNodeErr(w, err)
		return
	}
	ringAdopts.Inc()
	obs.Emit("ring.adopt", map[string]any{"node": n.ID, "campaign": id})
	writeJSON(w, http.StatusOK, map[string]string{"adopted": id})
}

// handleRelease stops a campaign and forgets it WITHOUT deleting its
// journal — the first half of a migration.
func (n *Node) handleRelease(w http.ResponseWriter, r *http.Request) {
	if err := n.mgr.Release(r.PathValue("id")); err != nil {
		writeNodeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"released": r.PathValue("id")})
}

// handleExport streams the campaign's raw journal bytes.
func (n *Node) handleExport(w http.ResponseWriter, r *http.Request) {
	data, err := n.inner.Export(r.PathValue("id"))
	if err != nil {
		writeNodeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(data)
}

// handleJournalDel removes a journal from the local store (the second
// half of a migration: the source's copy is stale once the target owns
// the campaign).
func (n *Node) handleJournalDel(w http.ResponseWriter, r *http.Request) {
	if err := n.inner.Remove(r.PathValue("id")); err != nil {
		writeNodeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": r.PathValue("id")})
}

func (n *Node) handleMembership(w http.ResponseWriter, r *http.Request) {
	var m Membership
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := n.InstallMembership(m); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"epoch": m.Epoch})
}

// writeNodeErr maps manager errors from the internal API onto statuses
// consistent with the public API's writeErr.
func writeNodeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrSpec):
		code = http.StatusBadRequest
	case errors.Is(err, serve.ErrNotFound), errors.Is(err, serve.ErrStoreNotFound):
		code = http.StatusNotFound
	case errors.Is(err, serve.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrJournal):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// --- shipping store: the replication wrapper around the local store ---

// shippingStore implements serve.Store by delegating to the node's
// local store while issuing Appenders that ship every record to the
// campaign's followers BEFORE appending locally. Combined with the
// service's journal-before-ack rule this is replicate-before-ack: an
// acknowledged observation exists on at least two nodes (the owner plus
// a quorum of one follower; remaining followers heal lazily).
type shippingStore struct {
	node  *Node
	inner serve.Store
}

func (s *shippingStore) IDs() ([]string, error) { return s.inner.IDs() }

func (s *shippingStore) Create(id string, spec serve.CampaignSpec) (serve.Appender, error) {
	app, err := s.inner.Create(id, spec)
	if err != nil {
		return nil, err
	}
	sa := &shippingAppender{node: s.node, id: id, local: app, idx: 1, needSync: make(map[string]bool)}
	// Establish each replica with the header line (record 0). A failure
	// is not fatal — the first observation's ship gap-heals that
	// follower with a full sync.
	if line, err := serve.EncodeJournalHeader(id, spec); err == nil {
		for _, f := range s.node.followerList(id) {
			if err := sa.ship(f.URL, line, 0); err != nil {
				sa.needSync[f.ID] = true
			}
		}
	}
	return sa, nil
}

func (s *shippingStore) Load(id string) (*serve.JournalInfo, serve.Appender, error) {
	info, app, err := s.inner.Load(id)
	if err != nil {
		return nil, nil, err
	}
	// Load truncates the journal to the header plus the complete
	// observations (terminal lines and torn tails stripped), so the next
	// ship index is known without an Export round-trip. Deriving it from
	// Export would leave idx at 0 if the Export failed — and every ship
	// at an index below the follower's count is acked as a dedup, so new
	// records would be silently dropped instead of replicated.
	sa := &shippingAppender{node: s.node, id: id, local: app, idx: 1 + len(info.Observations), needSync: make(map[string]bool)}
	// Sync every follower eagerly so a freshly resumed (or adopted)
	// campaign is re-replicated before it accepts new observations; on
	// failure the first append retries via needSync.
	for _, f := range s.node.followerList(id) {
		if err := sa.resyncTo(f); err != nil {
			sa.needSync[f.ID] = true
		}
	}
	return info, sa, nil
}

func (s *shippingStore) Remove(id string) error {
	if err := s.inner.Remove(id); err != nil {
		return err
	}
	// Best effort: a stale follower replica only wastes memory — it can
	// never be adopted once the router forgets the campaign.
	for _, f := range s.node.followerList(id) {
		ctx, cancel := context.WithTimeout(context.Background(), s.node.shipTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, f.URL+"/internal/replica/"+id, nil)
		if err == nil {
			if resp, err := s.node.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		cancel()
	}
	return nil
}

func (s *shippingStore) Export(id string) ([]byte, error)    { return s.inner.Export(id) }
func (s *shippingStore) Import(id string, data []byte) error { return s.inner.Import(id, data) }

// shippingAppender ships each record to the campaign's followers, then
// appends it locally. Owned by one campaign actor goroutine, like every
// Appender.
type shippingAppender struct {
	node  *Node
	id    string
	local serve.Appender

	// idx is the index of the next record to ship (0 = header). It
	// always equals the local journal's line count, so a full resync
	// image leaves every healed follower expecting exactly idx next.
	idx int
	// needSync marks followers that must get a full replica sync before
	// their next ship — set after a failed ship, sync, or header
	// establishment so a lagging follower is healed on the next append
	// instead of drifting.
	needSync map[string]bool
}

// replicate ships line as record a.idx to every follower and advances
// the index once a quorum of one has acknowledged it. A gap rejection
// (follower missing records: new follower after a membership change, or
// a reconciled one) heals with a full sync and one retry. Returns nil
// when the cluster has no follower to ship to.
func (a *shippingAppender) replicate(line []byte) error {
	fols := a.node.followerList(a.id)
	if len(fols) == 0 {
		return nil
	}
	acked := 0
	var firstErr error
	for _, f := range fols {
		if err := a.shipOne(f, line); err != nil {
			ringShipFollowerErrs.Inc()
			a.needSync[f.ID] = true
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		acked++
	}
	if acked == 0 {
		ringShipErrors.Inc()
		return firstErr
	}
	a.idx++
	return nil
}

// shipOne delivers record a.idx to one follower, healing it first if a
// previous round marked it out of sync.
func (a *shippingAppender) shipOne(f Member, line []byte) error {
	if a.needSync[f.ID] {
		if err := a.resyncTo(f); err != nil {
			return err
		}
		delete(a.needSync, f.ID)
	}
	err := a.ship(f.URL, line, a.idx)
	if errors.Is(err, errShipGap) {
		if err = a.resyncTo(f); err == nil {
			err = a.ship(f.URL, line, a.idx)
		}
	}
	return err
}

// ship POSTs one record line at index idx to a follower's base URL.
func (a *shippingAppender) ship(folURL string, line []byte, idx int) error {
	body, err := json.Marshal(shipRequest{Idx: idx, Line: line})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.node.shipTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, folURL+"/internal/ship/"+a.id, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.node.client.Do(req)
	if err != nil {
		return fmt.Errorf("ring: ship %s[%d]: %w", a.id, idx, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		ringShips.Inc()
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: %s[%d]", errShipGap, a.id, idx)
	default:
		return fmt.Errorf("ring: ship %s[%d]: HTTP %d", a.id, idx, resp.StatusCode)
	}
}

// resyncTo pushes the full local journal image to one follower. The
// image holds exactly the records shipped so far (local appends land
// after replicate), so afterwards the follower expects index a.idx —
// the ship index is shared across followers and never moves here.
func (a *shippingAppender) resyncTo(f Member) error {
	data, err := a.node.inner.Export(a.id)
	if err != nil {
		return fmt.Errorf("ring: export for sync: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.node.shipTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, f.URL+"/internal/replica/"+a.id, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := a.node.client.Do(req)
	if err != nil {
		return fmt.Errorf("ring: sync %s to %s: %w", a.id, f.ID, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ring: sync %s to %s: HTTP %d", a.id, f.ID, resp.StatusCode)
	}
	ringSyncs.Inc()
	obs.Emit("ring.sync", map[string]any{
		"node": a.node.ID, "campaign": a.id, "follower": f.ID,
		"records": bytes.Count(data, []byte("\n")),
	})
	return nil
}

// AppendObs implements serve.Appender: follower first, then local.
// A replication failure (after the gap-heal attempt) REJECTS the append
// so the service never acknowledges an observation that exists on only
// one node — the client sees 503 and retries, trading availability for
// the zero-acked-loss guarantee.
func (a *shippingAppender) AppendObs(o serve.Observation, mv int, fp uint64) error {
	line, err := serve.EncodeJournalObs(o, mv, fp)
	if err != nil {
		return err
	}
	if err := a.replicate(line); err != nil {
		return err
	}
	return a.local.AppendObs(o, mv, fp)
}

// AppendFinal implements serve.Appender. The terminal line is
// best-effort upstream (it is informational; resume strips it), so a
// replication failure here does not block the local append.
func (a *shippingAppender) AppendFinal(state, errMsg string, converged bool, mv int, fp uint64) error {
	if line, err := serve.EncodeJournalFinal(state, errMsg, converged, mv, fp); err == nil {
		if err := a.replicate(line); err != nil {
			obs.Emit("ring.ship.final.failed", map[string]any{"node": a.node.ID, "campaign": a.id, "err": err.Error()})
		}
	}
	return a.local.AppendFinal(state, errMsg, converged, mv, fp)
}

// Disable implements serve.Appender.
func (a *shippingAppender) Disable() { a.local.Disable() }

// Close implements serve.Appender.
func (a *shippingAppender) Close() error { return a.local.Close() }
