package ring

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Detector metrics (see OBSERVABILITY.md).
var (
	ringDetectorHeartbeats = obs.C("ring.detector.heartbeats")
	ringDetectorMisses     = obs.C("ring.detector.misses")
	ringDetectorSuspected  = obs.C("ring.detector.suspected")
	ringDetectorDead       = obs.C("ring.detector.dead")
	ringDetectorRecovered  = obs.C("ring.detector.recovered")
	ringDetectorPhi        = obs.H("ring.detector.phi", 0.5, 1, 2, 4, 8, 16)
)

// NodeState is a detector's verdict about one node.
type NodeState int

const (
	// StateAlive: heartbeats arriving on schedule.
	StateAlive NodeState = iota
	// StateSuspected: suspicion crossed SuspectPhi — the node is late
	// but not yet condemned; a single pong clears it.
	StateSuspected
	// StateDead: suspicion crossed DeadPhi — the detector is driving
	// the failover path for this node.
	StateDead
	// StateFenced: the node has been removed from the membership. It is
	// outside the epoch (every epoch-labeled request 503s on it) but the
	// detector keeps pinging: enough consecutive pongs trigger a rejoin.
	StateFenced
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspected:
		return "suspected"
	case StateDead:
		return "dead"
	case StateFenced:
		return "fenced"
	}
	return "unknown"
}

// DetectorConfig tunes the accrual failure detector.
type DetectorConfig struct {
	// Interval between heartbeats to each node (default 500ms).
	Interval time.Duration

	// PingTimeout bounds one heartbeat call (default Interval). This is
	// a real-time bound even under a fake clock: it caps how long Stop
	// can block on an in-flight ping.
	PingTimeout time.Duration

	// Window is how many heartbeat inter-arrival gaps feed the mean
	// (default 16).
	Window int

	// SuspectPhi is the suspicion score at which a node becomes
	// suspected (default 2 — about two missed intervals).
	SuspectPhi float64

	// DeadPhi is the score at which a node is condemned and failover
	// runs (default 5).
	DeadPhi float64

	// RejoinAfter is how many consecutive pongs a fenced node must
	// answer before the detector rejoins it (default 3).
	RejoinAfter int

	// Clock is the time source (default the system clock; tests inject
	// faults.FakeClock to drive detection deterministically).
	Clock faults.Clock
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = c.Interval
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.SuspectPhi <= 0 {
		c.SuspectPhi = 2
	}
	if c.DeadPhi <= c.SuspectPhi {
		c.DeadPhi = c.SuspectPhi + 3
	}
	if c.RejoinAfter <= 0 {
		c.RejoinAfter = 3
	}
	if c.Clock == nil {
		c.Clock = faults.SystemClock{}
	}
	return c
}

// phi is the accrual suspicion score. With heartbeat inter-arrivals
// modeled as exponential around the observed mean, the probability that
// the next heartbeat is still coming after `elapsed` of silence is
// exp(-elapsed/mean), and φ = -log10 of that = elapsed/mean · log10(e).
// φ grows linearly with silence: φ=2 is roughly "99% sure it's gone",
// φ=5 roughly "99.999%". Thresholding φ instead of a raw timeout means
// a node with naturally jittery heartbeats (larger observed mean) gets
// proportionally more patience.
func phi(elapsed, mean time.Duration) float64 {
	if mean <= 0 || elapsed <= 0 {
		return 0
	}
	return float64(elapsed) / float64(mean) * math.Log10E
}

// target is the detector's per-node record.
type target struct {
	id    string
	url   string
	state NodeState
	// last is when the most recent pong arrived (detector clock).
	last time.Time
	// window holds recent pong inter-arrival gaps.
	window []time.Duration
	// streak counts consecutive pongs from a fenced node.
	streak int
	// lastPhi is the score at the most recent miss (0 after a pong).
	lastPhi float64
}

// mean is the average observed inter-arrival gap, floored at the
// heartbeat interval so an idle-start window cannot hair-trigger φ.
func (t *target) mean(floor time.Duration) time.Duration {
	if len(t.window) == 0 {
		return floor
	}
	var sum time.Duration
	for _, g := range t.window {
		sum += g
	}
	m := sum / time.Duration(len(t.window))
	if m < floor {
		return floor
	}
	return m
}

// NodeHealth is one row of a detector snapshot.
type NodeHealth struct {
	ID    string  `json:"id"`
	URL   string  `json:"url"`
	State string  `json:"state"`
	Phi   float64 `json:"phi"`
}

// Detector is the router's autonomous failure detector: one heartbeat
// loop per node, an accrual suspicion score per target, and the two
// self-healing actions — drive Router failover when a node is condemned,
// drive Router rejoin when a fenced node answers again. All timing goes
// through an injectable clock so tests run detection with zero real
// sleeps.
//
// Lock order: the detector may call into the router (which takes the
// router's mu) while holding no locks, and the router calls fence and
// readmit while holding no locks. Neither side must ever hold its own
// mutex across a call into the other.
type Detector struct {
	cfg    DetectorConfig
	router *Router
	client *http.Client
	clock  faults.Clock

	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	targets map[string]*target
}

// newDetector builds (but does not start) a detector over the members.
// base is the router's underlying transport, so injected partitions and
// chaos cut heartbeats exactly like forwards. The heartbeat client
// deliberately does not retry: the accrual score IS the retry policy.
func newDetector(r *Router, cfg DetectorConfig, base http.RoundTripper, members []Member) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:     cfg,
		router:  r,
		client:  resilience.NewClient(base, resilience.TransportConfig{MaxAttempts: 1}),
		clock:   cfg.Clock,
		stop:    make(chan struct{}),
		targets: make(map[string]*target),
	}
	now := d.clock.Now()
	for _, m := range members {
		d.targets[m.ID] = &target{id: m.ID, url: m.URL, state: StateAlive, last: now}
	}
	return d
}

// start launches one watch loop per target.
func (d *Detector) start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range d.targets {
		d.wg.Add(1)
		go d.watch(t)
	}
}

// Stop halts every heartbeat loop and waits for them to exit.
func (d *Detector) Stop() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stop)
	d.wg.Wait()
}

// Snapshot reports every target's current verdict, sorted by node id.
func (d *Detector) Snapshot() []NodeHealth {
	d.mu.Lock()
	out := make([]NodeHealth, 0, len(d.targets))
	for _, t := range d.targets {
		out = append(out, NodeHealth{ID: t.id, URL: t.url, State: t.state.String(), Phi: t.lastPhi})
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// fence marks a node as removed-from-membership. The router (or the
// watch loop, after a successful auto-failover) calls it once the node
// is outside the epoch; from here only a pong streak can bring the node
// back, via rejoin.
func (d *Detector) fence(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.targets[id]
	if t == nil || t.state == StateFenced {
		return
	}
	t.state = StateFenced
	t.streak = 0
	obs.Emit("ring.detector.fenced", map[string]any{"node": id})
}

// readmit resets a node's record after a successful rejoin (or starts
// watching a node the detector has never seen).
func (d *Detector) readmit(m Member) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := d.targets[m.ID]; t != nil {
		t.url = m.URL
		t.state = StateAlive
		t.streak = 0
		t.window = nil
		t.last = d.clock.Now()
		t.lastPhi = 0
		obs.Emit("ring.detector.rejoined", map[string]any{"node": m.ID})
		return
	}
	if d.closed {
		return
	}
	t := &target{id: m.ID, url: m.URL, state: StateAlive, last: d.clock.Now()}
	d.targets[m.ID] = t
	d.wg.Add(1)
	go d.watch(t)
}

// watch is the per-node heartbeat loop: sleep one interval on the
// injected clock, ping, score, and run whichever self-healing action the
// state machine asks for.
func (d *Detector) watch(t *target) {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case <-d.clock.After(d.cfg.Interval):
		}
		ok := d.ping(t)
		switch d.observe(t, ok) {
		case actFailover:
			if err := d.router.autoFailover(t.id); err != nil {
				// Leave the state at dead: the next miss retries, and the
				// failover path is idempotent.
				obs.Emit("ring.detector.failover.error", map[string]any{"node": t.id, "err": err.Error()})
			} else {
				d.fence(t.id)
			}
		case actRejoin:
			d.mu.Lock()
			m := Member{ID: t.id, URL: t.url}
			d.mu.Unlock()
			if err := d.router.Rejoin(m); err != nil {
				// Stay fenced; the pong streak starts over.
				obs.Emit("ring.detector.rejoin.failed", map[string]any{"node": t.id, "err": err.Error()})
			}
			// On success Rejoin called readmit, which reset the record.
		}
	}
}

// ping sends one heartbeat. The pong must come from the node identity we
// are watching — a different process answering on a reused address is
// not a heartbeat.
func (d *Detector) ping(t *target) bool {
	d.mu.Lock()
	url := t.url
	d.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.PingTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/internal/ping", nil)
	if err != nil {
		return false
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var pong struct {
		Node string `json:"node"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pong); err != nil || pong.Node != t.id {
		return false
	}
	ringDetectorHeartbeats.Inc()
	return true
}

// Self-healing actions the state machine can request.
const (
	actNone = iota
	actFailover
	actRejoin
)

// observe folds one heartbeat result into the target's record and
// returns the action to run (outside the detector lock).
func (d *Detector) observe(t *target, ok bool) int {
	now := d.clock.Now()
	// isMember takes the router's mutex; per the lock-order rule on
	// Detector it must be resolved BEFORE d.mu is held, never across the
	// call. The snapshot is only consulted on the dead-but-answering
	// transition below; a membership change racing past it is reconciled
	// by the next heartbeat round.
	member := ok && d.router.isMember(t.id)
	d.mu.Lock()
	defer d.mu.Unlock()
	if ok {
		if gap := now.Sub(t.last); gap > 0 {
			t.window = append(t.window, gap)
			if len(t.window) > d.cfg.Window {
				t.window = t.window[len(t.window)-d.cfg.Window:]
			}
		}
		t.last = now
		t.lastPhi = 0
		switch t.state {
		case StateSuspected:
			t.state = StateAlive
			ringDetectorRecovered.Inc()
			obs.Emit("ring.detector.recovered", map[string]any{"node": t.id})
		case StateDead:
			// Condemned but answering again. If failover already removed
			// it from the membership, it is effectively fenced and must
			// earn a rejoin; otherwise it simply recovered in time.
			if member {
				t.state = StateAlive
				ringDetectorRecovered.Inc()
				obs.Emit("ring.detector.recovered", map[string]any{"node": t.id})
			} else {
				t.state = StateFenced
				t.streak = 0
				obs.Emit("ring.detector.fenced", map[string]any{"node": t.id})
			}
		case StateFenced:
			t.streak++
			if t.streak >= d.cfg.RejoinAfter {
				t.streak = 0
				return actRejoin
			}
		}
		return actNone
	}

	ringDetectorMisses.Inc()
	t.streak = 0
	p := phi(now.Sub(t.last), t.mean(d.cfg.Interval))
	t.lastPhi = p
	ringDetectorPhi.Observe(p)
	switch t.state {
	case StateAlive, StateSuspected:
		if p >= d.cfg.DeadPhi {
			t.state = StateDead
			ringDetectorDead.Inc()
			obs.Emit("ring.detector.dead", map[string]any{"node": t.id, "phi": p})
			return actFailover
		}
		if t.state == StateAlive && p >= d.cfg.SuspectPhi {
			t.state = StateSuspected
			ringDetectorSuspected.Inc()
			obs.Emit("ring.detector.suspected", map[string]any{"node": t.id, "phi": p})
		}
	case StateDead:
		// Failover has not landed yet (or partially failed); keep
		// driving it — autoFailover is idempotent.
		return actFailover
	case StateFenced:
		// Outside the membership; nothing to heal until it answers.
	}
	return actNone
}
