package ring

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
)

// autoDetectorCfg is the aggressive fake-clock detector every
// self-healing test runs: with a 100ms interval the node is suspected
// on the 3rd consecutive missed heartbeat and condemned on the 5th, and
// two pongs readmit a fenced node. PingTimeout is a real-time bound on
// one HTTP ping; in-process targets answer (or refuse) instantly.
func autoDetectorCfg(fc *faults.FakeClock) *DetectorConfig {
	return &DetectorConfig{
		Interval:    100 * time.Millisecond,
		PingTimeout: 2 * time.Second,
		Window:      8,
		SuspectPhi:  1,
		DeadPhi:     2,
		RejoinAfter: 2,
		Clock:       fc,
	}
}

// heartbeatRound advances the fake clock one detector interval and
// waits for every watch loop to finish the round's work — ping,
// suspicion update, any failover or rejoin it triggered — and park on
// the next timer. Assertions between rounds therefore observe a
// quiescent detector, which is what makes these chaos tests
// deterministic under -race.
func heartbeatRound(fc *faults.FakeClock, watchers int) func() {
	fc.BlockUntil(watchers)
	return func() {
		fc.Advance(100 * time.Millisecond)
		fc.BlockUntil(watchers)
	}
}

// roundsUntil runs heartbeat rounds until cond holds, failing the test
// if it never does within the cap.
func roundsUntil(t *testing.T, round func(), what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 64; i++ {
		if cond() {
			return
		}
		round()
	}
	if !cond() {
		t.Fatalf("%s never happened within 64 heartbeat rounds", what)
	}
}

func clusterHealthz(t *testing.T, client *http.Client, base string) (epoch uint64, members int, states map[string]string) {
	t.Helper()
	var out struct {
		Epoch        uint64   `json:"epoch"`
		Members      []string `json:"members"`
		Autofailover bool     `json:"autofailover"`
		Nodes        map[string]struct {
			State string  `json:"state"`
			Phi   float64 `json:"phi"`
		} `json:"nodes"`
	}
	code, err := httpJSON(client, http.MethodGet, base+"/cluster/healthz", "", nil, &out)
	if err != nil || code != http.StatusOK {
		t.Fatalf("cluster healthz: HTTP %d, err %v", code, err)
	}
	if !out.Autofailover {
		t.Fatal("cluster healthz does not report the detector as enabled")
	}
	states = make(map[string]string)
	for id, n := range out.Nodes {
		states[id] = n.State
	}
	return out.Epoch, len(out.Members), states
}

// TestClusterAutoFailoverOwnerKill is the autonomous acceptance
// scenario: kill a campaign owner mid-run and touch nothing — no
// Failover call, no KillAndFailover. The detector's suspicion crosses
// the dead threshold, the router fails the node over on its own, the
// follower resumes with every acknowledged observation, and all
// campaigns finish with the exact reference trace. Then the node
// restarts and rejoins, and its campaigns rebalance back home.
func TestClusterAutoFailoverOwnerKill(t *testing.T) {
	fc := faults.NewFakeClock(time.Unix(0, 0))
	cl := startTestCluster(t, ClusterConfig{
		Replicas: 3,
		Dir:      t.TempDir(),
		Router:   testRouterCfg(),
		Detector: autoDetectorCfg(fc),
	})
	client := &http.Client{}
	round := heartbeatRound(fc, 3)

	ids, seeds, attacked, survivor := seedCampaigns(t, cl, client, 61)
	refs := make(map[string]serve.CampaignStatus)
	for _, id := range ids {
		refs[id] = refStatus(t, clientSpec(seeds[id]))
	}
	const k = 3
	for _, id := range ids {
		if got := driveHTTP(t, client, cl.URL(), id, k); got != k {
			t.Fatalf("campaign %s: %d acked observes before the kill, want %d", id, got, k)
		}
	}
	// Warm the suspicion windows with on-schedule pongs.
	for i := 0; i < 3; i++ {
		round()
	}

	victim := cl.Router().Owner(attacked)
	autosBefore := obs.C("router.autofailover.count").Value()
	manualBefore := obs.C("router.failover.count").Value()
	if err := cl.Kill(victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}

	// The detector alone must notice and recover — the test only turns
	// the clock.
	roundsUntil(t, round, "autonomous failover of the killed owner", func() bool {
		return obs.C("router.autofailover.count").Value() > autosBefore
	})
	if got := obs.C("router.failover.count").Value(); got != manualBefore+1 {
		t.Fatalf("router.failover.count went %v -> %v, want exactly +1 (the detector's own)", manualBefore, got)
	}

	m := cl.Router().Membership()
	if m.Epoch != 2 || len(m.Members) != 2 {
		t.Fatalf("after auto-failover membership is epoch %d with %d members, want epoch 2 with 2", m.Epoch, len(m.Members))
	}
	epoch, members, states := clusterHealthz(t, client, cl.URL())
	if epoch != 2 || members != 2 {
		t.Fatalf("cluster healthz reports epoch %d with %d members, want 2/2", epoch, members)
	}
	if states[victim] != "fenced" {
		t.Fatalf("cluster healthz reports the killed node as %q, want fenced", states[victim])
	}

	// Zero acknowledged-observe loss on the adopted campaign.
	var st serve.CampaignStatus
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+attacked, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status of auto-failed-over campaign: HTTP %d, err %v", code, err)
	}
	if st.Observations != k {
		t.Fatalf("auto-failed-over campaign resumed with %d observations, want %d", st.Observations, k)
	}
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+survivor, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("surviving campaign %s unavailable after auto-failover: HTTP %d, err %v", survivor, code, err)
	}

	for _, id := range ids {
		driveHTTP(t, client, cl.URL(), id, 0)
		expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), refs[id])
	}

	// Heal: restart the node (same identity and checkpoint dir, fresh
	// port) — it is reconciled, readmitted at a new epoch, and its
	// natural campaigns migrate back with fingerprint-verified replays.
	rebalancedBefore := obs.C("router.rejoin.count").Value()
	if err := cl.Restart(victim); err != nil {
		t.Fatalf("restart %s: %v", victim, err)
	}
	if got := obs.C("router.rejoin.count").Value(); got != rebalancedBefore+1 {
		t.Fatalf("router.rejoin.count went %v -> %v, want +1", rebalancedBefore, got)
	}
	m = cl.Router().Membership()
	if m.Epoch != 3 || len(m.Members) != 3 {
		t.Fatalf("after rejoin membership is epoch %d with %d members, want epoch 3 with 3", m.Epoch, len(m.Members))
	}
	if got := cl.Node(victim).Epoch(); got != 3 {
		t.Fatalf("rejoined node is at epoch %d, want 3", got)
	}
	if got := cl.Router().Owner(attacked); got != victim {
		t.Fatalf("campaign %s was not rebalanced home after rejoin: owner %s, want %s", attacked, got, victim)
	}
	_, _, states = clusterHealthz(t, client, cl.URL())
	if states[victim] != "alive" {
		t.Fatalf("cluster healthz reports the rejoined node as %q, want alive", states[victim])
	}
	// The rebalanced campaign is intact on its home node.
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+attacked, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status of rebalanced campaign: HTTP %d, err %v", code, err)
	}
	expectSameTrace(t, st, refs[attacked])
}

// TestClusterAutoFencePartitionRejoin covers the false-positive the
// φ-detector must survive: the node is alive but unreachable from the
// router. The detector condemns and fences it — the node stays at the
// old epoch, so epoch-labeled requests aimed at it are rejected 503
// rather than answered from a stale view (no split-brain) — the rest of
// the cluster keeps serving, and when the partition heals the node is
// reconciled and rejoined autonomously, with its campaigns rebalanced
// back.
func TestClusterAutoFencePartitionRejoin(t *testing.T) {
	fc := faults.NewFakeClock(time.Unix(0, 0))
	cl := startTestCluster(t, ClusterConfig{
		Replicas: 3,
		Router:   testRouterCfg(),
		Detector: autoDetectorCfg(fc),
	})
	client := &http.Client{}
	round := heartbeatRound(fc, 3)

	ids, seeds, isolated, _ := seedCampaigns(t, cl, client, 71)
	refs := make(map[string]serve.CampaignStatus)
	for _, id := range ids {
		refs[id] = refStatus(t, clientSpec(seeds[id]))
	}
	for _, id := range ids {
		driveHTTP(t, client, cl.URL(), id, 2)
	}
	for i := 0; i < 3; i++ {
		round()
	}

	cut := cl.Router().Owner(isolated)
	autosBefore := obs.C("router.autofailover.count").Value()
	if err := cl.Partition(cut, true); err != nil {
		t.Fatalf("partition %s: %v", cut, err)
	}
	roundsUntil(t, round, "autonomous fencing of the partitioned node", func() bool {
		return obs.C("router.autofailover.count").Value() > autosBefore
	})

	m := cl.Router().Membership()
	if m.Epoch != 2 || len(m.Members) != 2 {
		t.Fatalf("after auto-fence membership is epoch %d with %d members, want epoch 2 with 2", m.Epoch, len(m.Members))
	}
	_, _, states := clusterHealthz(t, client, cl.URL())
	if states[cut] != "fenced" {
		t.Fatalf("cluster healthz reports the partitioned node as %q, want fenced", states[cut])
	}

	// The fence in action: the node is alive (the partition only cuts
	// the router's transport; this direct request reaches it) but still
	// at epoch 1, so a request labeled with the current epoch is refused
	// 503 — it cannot serve anything on a stale membership view.
	req, err := http.NewRequest(http.MethodGet, cl.NodeURL(cut)+"/campaigns", nil)
	if err != nil {
		t.Fatalf("build fenced request: %v", err)
	}
	req.Header.Set(EpochHeader, "2")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("fenced node is not reachable directly — the partition cut more than the router link: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("epoch-2 request to the fenced node: HTTP %d, want 503 (stale-epoch fence)", resp.StatusCode)
	}

	// The two survivors are a complete service: every campaign —
	// including the one adopted away from the fenced node — runs to its
	// reference trace while the partition holds.
	for _, id := range ids {
		driveHTTP(t, client, cl.URL(), id, 0)
		expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), refs[id])
	}

	// Heal the link. Two clean pongs later the detector rejoins the node
	// autonomously: reconcile wipes its stale campaign state, the epoch
	// moves, and its natural campaigns migrate back.
	rejoinsBefore := obs.C("router.rejoin.count").Value()
	if err := cl.Partition(cut, false); err != nil {
		t.Fatalf("heal partition %s: %v", cut, err)
	}
	roundsUntil(t, round, "autonomous rejoin of the healed node", func() bool {
		return obs.C("router.rejoin.count").Value() > rejoinsBefore
	})

	m = cl.Router().Membership()
	if m.Epoch != 3 || len(m.Members) != 3 {
		t.Fatalf("after rejoin membership is epoch %d with %d members, want epoch 3 with 3", m.Epoch, len(m.Members))
	}
	if got := cl.Node(cut).Epoch(); got != 3 {
		t.Fatalf("rejoined node is at epoch %d, want 3", got)
	}
	_, _, states = clusterHealthz(t, client, cl.URL())
	if states[cut] != "alive" {
		t.Fatalf("cluster healthz reports the healed node as %q, want alive", states[cut])
	}
	if got := cl.Router().Owner(isolated); got != cut {
		t.Fatalf("campaign %s was not rebalanced home after rejoin: owner %s, want %s", isolated, got, cut)
	}
	var st serve.CampaignStatus
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+isolated, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status of rebalanced campaign: HTTP %d, err %v", code, err)
	}
	expectSameTrace(t, st, refs[isolated])
}

// TestClusterReplicationK3 runs a campaign at replication 3 (owner plus
// two followers): both followers converge to the owner's journal byte
// for byte, and the campaign survives TWO successive owner failures —
// losing any k-1 of the k copies — finishing on the last node standing
// with the exact reference trace.
func TestClusterReplicationK3(t *testing.T) {
	cl := startTestCluster(t, ClusterConfig{
		Replicas:    3,
		Replication: 3,
		Router:      testRouterCfg(),
	})
	client := &http.Client{}
	ref := refStatus(t, clientSpec(81))

	id := createCampaign(t, client, cl.URL(), clientSpec(81))
	driveHTTP(t, client, cl.URL(), id, 2)

	// Every node holds the journal: the owner's local copy and a shipped
	// replica on each of the two followers (the terminal line ships
	// best-effort, so poll briefly for convergence).
	owner := cl.Router().Owner(id)
	var followers []string
	for _, nid := range cl.NodeIDs() {
		if nid != owner {
			followers = append(followers, nid)
		}
	}
	if len(followers) != 2 {
		t.Fatalf("replication-3 campaign has %d followers, want 2", len(followers))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var exported []byte
		if resp, err := client.Get(cl.NodeURL(owner) + "/internal/export/" + id); err == nil {
			exported = readAllBody(t, resp)
		}
		converged := len(exported) > 0
		for _, f := range followers {
			var replicated []byte
			if resp, err := client.Get(cl.NodeURL(f) + "/internal/replica/" + id); err == nil {
				replicated = readAllBody(t, resp)
			}
			converged = converged && bytes.Equal(exported, replicated)
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s: follower replicas never converged to the owner's journal", id)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// First owner loss: the ring remaps the campaign onto a node already
	// holding its replica.
	if err := cl.KillAndFailover(owner); err != nil {
		t.Fatalf("first kill+failover (%s): %v", owner, err)
	}
	var st serve.CampaignStatus
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+id, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status after first failover: HTTP %d, err %v", code, err)
	}
	if st.Observations != 2 {
		t.Fatalf("after the first failover the campaign has %d observations, want 2", st.Observations)
	}
	driveHTTP(t, client, cl.URL(), id, 2)

	// Second owner loss: only one copy remains, and it is complete.
	second := cl.Router().Owner(id)
	if second == owner {
		t.Fatalf("campaign still placed on the dead node %s", owner)
	}
	if err := cl.KillAndFailover(second); err != nil {
		t.Fatalf("second kill+failover (%s): %v", second, err)
	}
	if code, err := httpJSON(client, http.MethodGet, cl.URL()+"/campaigns/"+id, "", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status after second failover: HTTP %d, err %v", code, err)
	}
	if st.Observations != 4 {
		t.Fatalf("after the second failover the campaign has %d observations, want 4", st.Observations)
	}

	driveHTTP(t, client, cl.URL(), id, 0)
	expectSameTrace(t, waitTerminalHTTP(t, client, cl.URL(), id), ref)

	if m := cl.Router().Membership(); m.Epoch != 3 || len(m.Members) != 1 {
		t.Fatalf("after two failovers membership is epoch %d with %d members, want epoch 3 with 1", m.Epoch, len(m.Members))
	}
}
