package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("c%06d", i+1)
	}
	return keys
}

func TestRingOwnerDeterministic(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	a := NewRing(nodes, 0)
	b := NewRing([]string{"n5", "n3", "n1", "n4", "n2"}, 0) // order must not matter
	for _, key := range testKeys(200) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner differs across construction orders (%s vs %s)", key, a.Owner(key), b.Owner(key))
		}
		walk := a.OwnerN(key, len(nodes))
		if len(walk) != len(nodes) {
			t.Fatalf("key %s: OwnerN returned %d nodes, want %d", key, len(walk), len(nodes))
		}
		seen := make(map[string]bool)
		for _, id := range walk {
			if seen[id] {
				t.Fatalf("key %s: OwnerN repeated node %s", key, id)
			}
			seen[id] = true
		}
		if walk[0] != a.Owner(key) {
			t.Fatalf("key %s: OwnerN[0]=%s disagrees with Owner=%s", key, walk[0], a.Owner(key))
		}
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	for _, key := range testKeys(300) {
		counts[r.Owner(key)]++
	}
	for _, id := range nodes {
		if counts[id] == 0 {
			t.Fatalf("node %s owns no keys out of 300: %v", id, counts)
		}
	}
}

// TestRingFailoverRemap pins the invariant the whole failover design
// rests on: when a node dies, each of its keys lands exactly on that
// key's old follower (OwnerN[1] — the node already holding the shipped
// replica), and every other key keeps its owner.
func TestRingFailoverRemap(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	full := NewRing(nodes, 0)
	for _, dead := range nodes {
		var survivors []string
		for _, id := range nodes {
			if id != dead {
				survivors = append(survivors, id)
			}
		}
		shrunk := NewRing(survivors, 0)
		remapped := 0
		for _, key := range testKeys(300) {
			owner := full.Owner(key)
			if owner != dead {
				if got := shrunk.Owner(key); got != owner {
					t.Fatalf("removing %s moved key %s from %s to %s — unrelated keys must not move", dead, key, owner, got)
				}
				continue
			}
			remapped++
			follower := full.OwnerN(key, 2)[1]
			if got := shrunk.Owner(key); got != follower {
				t.Fatalf("removing %s sent key %s to %s, but its follower (replica holder) is %s", dead, key, got, follower)
			}
		}
		if remapped == 0 {
			t.Fatalf("node %s owned no keys — test exercises nothing", dead)
		}
	}
}

func TestMembershipValidate(t *testing.T) {
	bad := []Membership{
		{Epoch: 1, Members: []Member{{ID: "", URL: "http://x"}}},
		{Epoch: 1, Members: []Member{{ID: "n1", URL: ""}}},
		{Epoch: 1, Members: []Member{{ID: "n1", URL: "http://x"}, {ID: "n1", URL: "http://y"}}},
	}
	for i, m := range bad {
		if err := m.validate(); err == nil {
			t.Fatalf("membership %d validated but is malformed: %+v", i, m)
		}
	}
}

func TestNodeEpochGuard(t *testing.T) {
	n := NewNode(NodeConfig{ID: "n1"})
	defer n.Manager().Shutdown(context.Background())

	m := Membership{Epoch: 5, Members: []Member{{ID: "n1", URL: "http://a"}, {ID: "n2", URL: "http://b"}}}
	if err := n.InstallMembership(m); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := n.InstallMembership(Membership{Epoch: 4, Members: m.Members}); err == nil {
		t.Fatal("installing an older epoch succeeded — epochs must only move forward")
	}
	if err := n.InstallMembership(Membership{Epoch: 5, Members: m.Members}); err != nil {
		t.Fatalf("re-installing the current epoch should be a no-op refresh, got %v", err)
	}

	before := ringEpochRejects.Value()
	req := httptest.NewRequest(http.MethodGet, "/campaigns", nil)
	req.Header.Set(EpochHeader, "4")
	rec := httptest.NewRecorder()
	n.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale-epoch request got HTTP %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("stale-epoch rejection carries no Retry-After")
	}
	if ringEpochRejects.Value() != before+1 {
		t.Fatalf("ring.epoch.rejects did not increment (%v -> %v)", before, ringEpochRejects.Value())
	}

	req = httptest.NewRequest(http.MethodGet, "/campaigns", nil)
	req.Header.Set(EpochHeader, "5")
	rec = httptest.NewRecorder()
	n.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("current-epoch request got HTTP %d, want 200", rec.Code)
	}
}

// TestShipProtocol drives the follower-side replica API directly:
// in-order appends accumulate, duplicates are acknowledged without
// effect, gaps are rejected 409, and a full PUT heals anything.
func TestShipProtocol(t *testing.T) {
	n := NewNode(NodeConfig{ID: "n2"})
	defer n.Manager().Shutdown(context.Background())

	ship := func(id string, idx int, line string) (int, int) {
		t.Helper()
		body, _ := json.Marshal(shipRequest{Idx: idx, Line: []byte(line)})
		req := httptest.NewRequest(http.MethodPost, "/internal/ship/"+id, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		n.ServeHTTP(rec, req)
		var out struct {
			Count int `json:"count"`
		}
		_ = json.Unmarshal(rec.Body.Bytes(), &out)
		return rec.Code, out.Count
	}

	// A fresh replica only starts at idx 0 (the header line).
	if code, _ := ship("cX", 3, "late\n"); code != http.StatusConflict {
		t.Fatalf("ship idx 3 to missing replica: HTTP %d, want 409", code)
	}
	if code, count := ship("cX", 0, "header\n"); code != http.StatusOK || count != 1 {
		t.Fatalf("ship idx 0: HTTP %d count %d, want 200/1", code, count)
	}
	if code, count := ship("cX", 1, "obs-1\n"); code != http.StatusOK || count != 2 {
		t.Fatalf("ship idx 1: HTTP %d count %d, want 200/2", code, count)
	}
	dedupBefore := ringShipDedup.Value()
	if code, count := ship("cX", 1, "obs-1\n"); code != http.StatusOK || count != 2 {
		t.Fatalf("duplicate ship idx 1: HTTP %d count %d, want 200/2 (idempotent ack)", code, count)
	}
	if ringShipDedup.Value() != dedupBefore+1 {
		t.Fatal("duplicate delivery did not count as ring.ship.dedup")
	}
	if code, count := ship("cX", 3, "gap\n"); code != http.StatusConflict || count != 2 {
		t.Fatalf("gapped ship idx 3: HTTP %d count %d, want 409 with count 2", code, count)
	}
	if code, _ := ship("cX", 0, "not newline terminated"); code != http.StatusBadRequest {
		t.Fatalf("unterminated line accepted: HTTP %d, want 400", code)
	}

	// Full sync replaces the buffer wholesale.
	image := "header\nobs-1\nobs-2\nobs-3\n"
	req := httptest.NewRequest(http.MethodPut, "/internal/replica/cX", strings.NewReader(image))
	rec := httptest.NewRecorder()
	n.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("replica PUT: HTTP %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/internal/replica/cX", nil)
	rec = httptest.NewRecorder()
	n.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != image {
		t.Fatalf("replica GET after sync: HTTP %d body %q, want the synced image", rec.Code, rec.Body.String())
	}
	// And the next in-order ship continues from the synced count.
	if code, count := ship("cX", 4, "obs-4\n"); code != http.StatusOK || count != 5 {
		t.Fatalf("ship after sync: HTTP %d count %d, want 200/5", code, count)
	}
}

// TestShipBeforeAck pins replicate-before-ack at the appender level:
// when the follower is unreachable, AppendObs must fail (the service
// then answers 503 and the client retries) rather than journal locally
// and ack an observation that exists on one node only.
func TestShipBeforeAck(t *testing.T) {
	n := NewNode(NodeConfig{ID: "n1"})
	defer n.Manager().Shutdown(context.Background())
	// A follower that is down: a listener address nothing accepts on.
	if err := n.InstallMembership(Membership{Epoch: 1, Members: []Member{
		{ID: "n1", URL: "http://127.0.0.1:1"},
		{ID: "n2", URL: "http://127.0.0.1:1"},
	}}); err != nil {
		t.Fatalf("install: %v", err)
	}

	store := &shippingStore{node: n, inner: serve.NewMemStore()}
	app, err := store.Create("c000001", clientSpec(1))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer app.Close()
	errsBefore := ringShipErrors.Value()
	if err := app.AppendObs(serve.Observation{X: []float64{0}, Y: 1, Cost: 1}, 1, 42); err == nil {
		t.Fatal("AppendObs succeeded with the follower unreachable — the ack would exist on one node only")
	}
	if ringShipErrors.Value() <= errsBefore {
		t.Fatal("failed replication did not count as ring.ship.errors")
	}
	// The local journal must not contain the rejected observation.
	data, err := store.Export("c000001")
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if got := bytes.Count(data, []byte("\n")); got != 1 {
		t.Fatalf("local journal has %d lines after a rejected append, want 1 (header only):\n%s", got, data)
	}
}

// TestRingOwnerNSmallMemberships pins OwnerN's behavior at the edges
// the k-follower placement depends on: k greater than the membership
// clamps (never pads, never repeats), k equal to it returns every node
// exactly once, and degenerate rings return nil rather than panic.
func TestRingOwnerNSmallMemberships(t *testing.T) {
	cases := []struct {
		name  string
		nodes []string
		n     int
		want  int // expected result length
	}{
		{"k exceeds membership", []string{"n1", "n2"}, 3, 2},
		{"k equals membership", []string{"n1", "n2", "n3"}, 3, 3},
		{"single node, k=3", []string{"n1"}, 3, 1},
		{"single node, k=1", []string{"n1"}, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing(tc.nodes, 0)
			for _, key := range testKeys(50) {
				got := r.OwnerN(key, tc.n)
				if len(got) != tc.want {
					t.Fatalf("key %s: OwnerN(%d) over %v returned %v, want %d distinct nodes",
						key, tc.n, tc.nodes, got, tc.want)
				}
				seen := make(map[string]bool)
				for _, id := range got {
					if seen[id] {
						t.Fatalf("key %s: OwnerN repeated %s: %v", key, id, got)
					}
					seen[id] = true
				}
				if got[0] != r.Owner(key) {
					t.Fatalf("key %s: OwnerN[0]=%s disagrees with Owner=%s", key, got[0], r.Owner(key))
				}
			}
		})
	}

	empty := NewRing(nil, 0)
	if got := empty.OwnerN("c000001", 3); got != nil {
		t.Fatalf("empty ring OwnerN returned %v, want nil", got)
	}
	r := NewRing([]string{"n1", "n2"}, 0)
	if got := r.OwnerN("c000001", 0); got != nil {
		t.Fatalf("OwnerN(0) returned %v, want nil", got)
	}
	if got := r.OwnerN("c000001", -1); got != nil {
		t.Fatalf("OwnerN(-1) returned %v, want nil", got)
	}
}

// TestRingFollowerSetMinimalRemap extends the failover-remap invariant
// to the whole k=3 replica set: removing one node must leave every
// key's surviving replica holders in place and in order — the shrunken
// ring's OwnerN(key, 3) is exactly the full ring's preference walk with
// the dead node deleted. This is what lets a k-replicated campaign fail
// over without re-shipping journals to freshly chosen followers.
func TestRingFollowerSetMinimalRemap(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	full := NewRing(nodes, 0)
	const k = 3
	for _, dead := range nodes {
		var survivors []string
		for _, id := range nodes {
			if id != dead {
				survivors = append(survivors, id)
			}
		}
		shrunk := NewRing(survivors, 0)
		for _, key := range testKeys(200) {
			walk := full.OwnerN(key, len(nodes))
			var want []string
			for _, id := range walk {
				if id != dead {
					want = append(want, id)
				}
				if len(want) == k {
					break
				}
			}
			got := shrunk.OwnerN(key, k)
			if len(got) != len(want) {
				t.Fatalf("removing %s: key %s OwnerN(%d)=%v, want %v", dead, key, k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("removing %s: key %s replica set remapped to %v, want the filtered walk %v",
						dead, key, got, want)
				}
			}
		}
	}
}
