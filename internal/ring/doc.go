// Package ring shards the campaign service across replicas: a
// consistent-hash ring places each campaign on an owner node, every
// accepted journal record is shipped to the campaign's follower before
// the owner acknowledges it, and an epoch-numbered membership table
// lets a thin router fail campaigns over to their follower when the
// owner dies — with the shipped journal replaying to exactly the
// fingerprinted trace the dead owner would have produced.
//
// # Placement
//
// Campaign ids hash onto a ring of virtual nodes (Ring). The owner is
// the first node clockwise of the id's hash; the follower is the next
// DISTINCT node on the same walk. Consistent hashing gives the failover
// invariant the whole design leans on: removing a node remaps each of
// its keys to exactly the next distinct node on that key's walk — the
// follower — so the node promoted by the ring after a death is
// precisely the node already holding the campaign's replica.
//
// # Replication
//
// The owner's serve.Store is wrapped so that every journal record
// (header, observation, terminal line) is shipped to the campaign's
// followers (NodeConfig.Followers of them, walk order) BEFORE the local
// append, and the append is acknowledged once at least one follower
// holds the record. Composed with the service's journal-before-ack rule
// this yields replicate-before-ack: an acknowledged observe exists on
// at least two nodes, so killing any one loses nothing that was
// acknowledged. Records carry a monotonic index; followers dedup
// replayed indices (duplicate delivery is free) and reject gaps, which
// the owner heals with a full journal sync — the same mechanism
// bootstraps a brand-new follower after membership changes and catches
// up laggards that missed a quorum round.
//
// # Epochs and handoff
//
// Membership is an epoch-numbered node table owned by the Router (the
// sole membership authority — there is no gossip). Forwarded requests
// carry the router's epoch; a node that sees a different epoch rejects
// with 503 + Retry-After (a split-epoch reject) rather than serve under
// a stale view. During failover or migration the router marks the
// campaign in handoff and sheds its traffic with 503 + Retry-After;
// every other campaign keeps serving throughout.
//
// # Failure detection and self-healing
//
// Router.Failover stays available as the operator's explicit move, but
// the Detector (Router.EnableAutoFailover) makes the cluster
// autonomous: one heartbeat loop per node feeds an accrual (φ-style)
// suspicion score, and a node whose score crosses the dead threshold is
// failed over automatically. A condemned node that was merely slow or
// partitioned is fenced, not split-brained — it sits outside the new
// epoch, so every epoch-labeled request 503s on it — and once it
// answers heartbeats again the detector rejoins it: the node is
// reconciled (stale campaigns, journals, and replica buffers dropped),
// readmitted at a fresh epoch, and campaigns migrate back under a
// load-aware rebalance. All detector timing flows through an injectable
// clock (faults.Clock), which keeps the chaos suite deterministic.
// DESIGN.md §13 has the full protocol and failure matrix;
// OBSERVABILITY.md catalogs the ring.* and router.* metrics.
package ring
