package kernel

import "math"

// Constant is the constant kernel k(x, y) = c². θ = [log c].
// Summed with another kernel it models a constant offset in the prior.
type Constant struct {
	logC float64
}

// NewConstant returns a constant kernel with value c² (c > 0).
func NewConstant(c float64) *Constant {
	if c <= 0 {
		panic("kernel: Constant parameter must be positive")
	}
	return &Constant{logC: math.Log(c)}
}

// Eval implements Kernel.
func (k *Constant) Eval(_, _ []float64) float64 { return math.Exp(2 * k.logC) }

// EvalGrad implements Kernel.
func (k *Constant) EvalGrad(_, _ []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 1, "Constant")
	v := math.Exp(2 * k.logC)
	grad[0] = 2 * v
	return v
}

// NumHyper implements Kernel.
func (k *Constant) NumHyper() int { return 1 }

// Hyper implements Kernel.
func (k *Constant) Hyper() []float64 { return []float64{k.logC} }

// SetHyper implements Kernel.
func (k *Constant) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 1, "Constant")
	k.logC = theta[0]
}

// Bounds implements Kernel.
func (k *Constant) Bounds() []Bounds { return []Bounds{DefaultBounds} }

// HyperNames implements Kernel.
func (k *Constant) HyperNames() []string { return []string{"log_c"} }

// Name implements Kernel.
func (k *Constant) Name() string { return "Constant" }

// White is the white-noise kernel k(x, y) = σ² 1[x == y]. θ = [log σ].
// Added to a smooth kernel it plays the role of the σn² noise term; the GP
// package usually models noise directly, but White allows expressing it as
// part of a composite kernel as scikit-learn's WhiteKernel does.
type White struct {
	logS float64
}

// NewWhite returns a white-noise kernel with standard deviation s.
func NewWhite(s float64) *White {
	if s <= 0 {
		panic("kernel: White parameter must be positive")
	}
	return &White{logS: math.Log(s)}
}

// Eval implements Kernel. Inputs are compared element-wise for exact
// equality, matching the pool-based setting where candidate points are
// drawn from a finite design.
func (k *White) Eval(x, y []float64) float64 {
	if !sameVec(x, y) {
		return 0
	}
	return math.Exp(2 * k.logS)
}

// EvalGrad implements Kernel.
func (k *White) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 1, "White")
	if !sameVec(x, y) {
		grad[0] = 0
		return 0
	}
	v := math.Exp(2 * k.logS)
	grad[0] = 2 * v
	return v
}

func sameVec(x, y []float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i, v := range x {
		if v != y[i] {
			return false
		}
	}
	return true
}

// NumHyper implements Kernel.
func (k *White) NumHyper() int { return 1 }

// Hyper implements Kernel.
func (k *White) Hyper() []float64 { return []float64{k.logS} }

// SetHyper implements Kernel.
func (k *White) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 1, "White")
	k.logS = theta[0]
}

// Bounds implements Kernel.
func (k *White) Bounds() []Bounds { return []Bounds{DefaultBounds} }

// HyperNames implements Kernel.
func (k *White) HyperNames() []string { return []string{"log_sn"} }

// Name implements Kernel.
func (k *White) Name() string { return "White" }

// Linear is the (homogeneous) dot-product kernel k(x, y) = σv² xᵀy.
// θ = [log σv]. Summed with Constant it yields Bayesian linear regression
// as a GP.
type Linear struct {
	logSV float64
}

// NewLinear returns a linear kernel with slope variance sv².
func NewLinear(sv float64) *Linear {
	if sv <= 0 {
		panic("kernel: Linear parameter must be positive")
	}
	return &Linear{logSV: math.Log(sv)}
}

// Eval implements Kernel.
func (k *Linear) Eval(x, y []float64) float64 {
	var s float64
	for i, xv := range x {
		s += xv * y[i]
	}
	return math.Exp(2*k.logSV) * s
}

// EvalGrad implements Kernel.
func (k *Linear) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 1, "Linear")
	v := k.Eval(x, y)
	grad[0] = 2 * v
	return v
}

// NumHyper implements Kernel.
func (k *Linear) NumHyper() int { return 1 }

// Hyper implements Kernel.
func (k *Linear) Hyper() []float64 { return []float64{k.logSV} }

// SetHyper implements Kernel.
func (k *Linear) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 1, "Linear")
	k.logSV = theta[0]
}

// Bounds implements Kernel.
func (k *Linear) Bounds() []Bounds { return []Bounds{DefaultBounds} }

// HyperNames implements Kernel.
func (k *Linear) HyperNames() []string { return []string{"log_sv"} }

// Name implements Kernel.
func (k *Linear) Name() string { return "Linear" }
