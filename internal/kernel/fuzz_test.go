package kernel

import (
	"math"
	"testing"
)

// fuzzKernels returns one fresh instance of every primitive kernel family
// plus representative composites, all over 2-D inputs.
func fuzzKernels() []Kernel {
	return []Kernel{
		NewRBF(1, 1),
		NewARD([]float64{1, 1}, 1),
		NewMatern32(1, 1),
		NewMatern52(1, 1),
		NewRationalQuadratic(1, 1, 1),
		NewPeriodic(1, 1, 1),
		NewConstant(1),
		NewWhite(1),
		NewLinear(1),
		NewSum(NewRBF(1, 1), NewMatern52(1, 1)),
		NewProduct(NewRBF(1, 1), NewPeriodic(1, 1, 1)),
	}
}

// sanitizeInput maps an arbitrary fuzz float into a finite, moderately
// sized coordinate. Non-finite inputs fold to 0.
func sanitizeInput(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	const lim = 1e6
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// FuzzKernelParams drives every kernel family with adversarial
// hyperparameters (clamped into each kernel's declared bounds — the same
// clamp the LML optimizer enforces) and adversarial finite inputs, and
// asserts the PSD-kernel sanity properties: no panic, finite values, no
// NaN, symmetry k(x,y) = k(y,x), nonnegative self-covariance, and finite
// gradients from EvalGrad.
func FuzzKernelParams(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0)
	f.Add(-11.5, 11.5, 0.0, 1.0, -2.0, 3.0, 4.0)
	f.Add(11.5, -11.5, 11.5, 1e6, -1e6, 1e-12, 0.0)
	f.Add(math.Inf(1), math.NaN(), -300.0, 0.5, 0.5, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, h1, h2, h3, x1, x2, y1, y2 float64) {
		raw := []float64{h1, h2, h3, h1 - h2, h2 + h3, h3 * 0.5}
		x := []float64{sanitizeInput(x1), sanitizeInput(x2)}
		y := []float64{sanitizeInput(y1), sanitizeInput(y2)}
		for _, k := range fuzzKernels() {
			bounds := k.Bounds()
			theta := make([]float64, k.NumHyper())
			for i := range theta {
				v := raw[i%len(raw)]
				if math.IsNaN(v) {
					v = 0
				}
				theta[i] = bounds[i].Clamp(v)
			}
			k.SetHyper(theta)

			kxy := k.Eval(x, y)
			kyx := k.Eval(y, x)
			kxx := k.Eval(x, x)
			if math.IsNaN(kxy) || math.IsInf(kxy, 0) {
				t.Fatalf("%s(θ=%v): k(x,y) = %g for x=%v y=%v", k.Name(), theta, kxy, x, y)
			}
			if kxy != kyx {
				t.Fatalf("%s(θ=%v): asymmetric k(x,y)=%g k(y,x)=%g", k.Name(), theta, kxy, kyx)
			}
			if math.IsNaN(kxx) || math.IsInf(kxx, 0) || kxx < 0 {
				t.Fatalf("%s(θ=%v): invalid self-covariance k(x,x) = %g", k.Name(), theta, kxx)
			}

			grad := make([]float64, k.NumHyper())
			v := k.EvalGrad(x, y, grad)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s(θ=%v): EvalGrad value = %g", k.Name(), theta, v)
			}
			for i, g := range grad {
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("%s(θ=%v): gradient[%d] = %g", k.Name(), theta, i, g)
				}
			}

			// Hyper round trip: SetHyper(Hyper()) must be stable.
			got := k.Hyper()
			for i := range got {
				if got[i] != theta[i] {
					t.Fatalf("%s: hyper round trip changed θ[%d]: %g → %g", k.Name(), i, theta[i], got[i])
				}
			}
		}
	})
}
