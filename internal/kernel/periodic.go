package kernel

import "math"

// Periodic is the exp-sine-squared kernel:
//
//	k(x, y) = σf² exp(−2 sin²(π r / p) / l²),  r = |x−y|
//
// θ = [log l, log σf, log p]. Useful for responses with cyclic structure
// (e.g. performance modulated by a periodic system activity); included to
// round out the kernel algebra for composite models like
// Periodic × RBF (locally periodic).
type Periodic struct {
	logL, logSF, logP float64
}

// NewPeriodic returns a periodic kernel with length scale l, amplitude
// sf, and period p.
func NewPeriodic(l, sf, p float64) *Periodic {
	if l <= 0 || sf <= 0 || p <= 0 {
		panic("kernel: Periodic parameters must be positive")
	}
	return &Periodic{logL: math.Log(l), logSF: math.Log(sf), logP: math.Log(p)}
}

// Eval implements Kernel.
func (k *Periodic) Eval(x, y []float64) float64 {
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	p := math.Exp(k.logP)
	s := math.Sin(math.Pi * math.Sqrt(sqDist(x, y)) / p)
	return sf2 * math.Exp(-2*s*s/(l*l))
}

// EvalGrad implements Kernel. With u = π r / p, s = sin u:
//
//	∂k/∂log l  = k · 4 s²/l²
//	∂k/∂log σf = 2k
//	∂k/∂log p  = k · (4 s cos u · u) / l²
func (k *Periodic) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 3, "Periodic")
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	p := math.Exp(k.logP)
	r := math.Sqrt(sqDist(x, y))
	u := math.Pi * r / p
	s := math.Sin(u)
	v := sf2 * math.Exp(-2*s*s/(l*l))
	grad[0] = v * 4 * s * s / (l * l)
	grad[1] = 2 * v
	grad[2] = v * 4 * s * math.Cos(u) * u / (l * l)
	return v
}

// NumHyper implements Kernel.
func (k *Periodic) NumHyper() int { return 3 }

// Hyper implements Kernel.
func (k *Periodic) Hyper() []float64 { return []float64{k.logL, k.logSF, k.logP} }

// SetHyper implements Kernel.
func (k *Periodic) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 3, "Periodic")
	k.logL, k.logSF, k.logP = theta[0], theta[1], theta[2]
}

// Bounds implements Kernel.
func (k *Periodic) Bounds() []Bounds {
	return []Bounds{DefaultBounds, DefaultBounds, {Lo: math.Log(1e-3), Hi: math.Log(1e3)}}
}

// HyperNames implements Kernel.
func (k *Periodic) HyperNames() []string { return []string{"log_l", "log_sf", "log_p"} }

// Name implements Kernel.
func (k *Periodic) Name() string { return "Periodic" }
