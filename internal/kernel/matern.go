package kernel

import "math"

// Matern32 is the Matérn kernel with smoothness ν = 3/2:
//
//	k(x, y) = σf² (1 + √3 r/l) exp(-√3 r/l),  r = |x-y|
//
// θ = [log l, log σf]. Once-differentiable sample paths make it a common
// robust alternative to RBF for rough performance surfaces.
type Matern32 struct {
	logL, logSF float64
}

// NewMatern32 returns a Matérn-3/2 kernel with length scale l and
// amplitude sf.
func NewMatern32(l, sf float64) *Matern32 {
	if l <= 0 || sf <= 0 {
		panic("kernel: Matern32 parameters must be positive")
	}
	return &Matern32{logL: math.Log(l), logSF: math.Log(sf)}
}

// Eval implements Kernel.
func (k *Matern32) Eval(x, y []float64) float64 {
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	a := math.Sqrt(3*sqDist(x, y)) / l
	return sf2 * (1 + a) * math.Exp(-a)
}

// EvalGrad implements Kernel. With a = √3 r/l:
//
//	∂k/∂log l  = σf² a² e^{-a}
//	∂k/∂log σf = 2k
func (k *Matern32) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 2, "Matern32")
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	a := math.Sqrt(3*sqDist(x, y)) / l
	e := math.Exp(-a)
	v := sf2 * (1 + a) * e
	grad[0] = sf2 * a * a * e
	grad[1] = 2 * v
	return v
}

// NumHyper implements Kernel.
func (k *Matern32) NumHyper() int { return 2 }

// Hyper implements Kernel.
func (k *Matern32) Hyper() []float64 { return []float64{k.logL, k.logSF} }

// SetHyper implements Kernel.
func (k *Matern32) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 2, "Matern32")
	k.logL, k.logSF = theta[0], theta[1]
}

// Bounds implements Kernel.
func (k *Matern32) Bounds() []Bounds { return []Bounds{DefaultBounds, DefaultBounds} }

// HyperNames implements Kernel.
func (k *Matern32) HyperNames() []string { return []string{"log_l", "log_sf"} }

// Name implements Kernel.
func (k *Matern32) Name() string { return "Matern32" }

// Matern52 is the Matérn kernel with smoothness ν = 5/2:
//
//	k(x, y) = σf² (1 + √5 r/l + 5r²/(3l²)) exp(-√5 r/l)
//
// θ = [log l, log σf].
type Matern52 struct {
	logL, logSF float64
}

// NewMatern52 returns a Matérn-5/2 kernel with length scale l and
// amplitude sf.
func NewMatern52(l, sf float64) *Matern52 {
	if l <= 0 || sf <= 0 {
		panic("kernel: Matern52 parameters must be positive")
	}
	return &Matern52{logL: math.Log(l), logSF: math.Log(sf)}
}

// Eval implements Kernel.
func (k *Matern52) Eval(x, y []float64) float64 {
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	r2 := sqDist(x, y)
	a := math.Sqrt(5*r2) / l
	return sf2 * (1 + a + a*a/3) * math.Exp(-a)
}

// EvalGrad implements Kernel. With a = √5 r/l:
//
//	∂k/∂log l  = σf² e^{-a} · a²(1+a)/3
//	∂k/∂log σf = 2k
func (k *Matern52) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 2, "Matern52")
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	a := math.Sqrt(5*sqDist(x, y)) / l
	e := math.Exp(-a)
	v := sf2 * (1 + a + a*a/3) * e
	grad[0] = sf2 * e * a * a * (1 + a) / 3
	grad[1] = 2 * v
	return v
}

// NumHyper implements Kernel.
func (k *Matern52) NumHyper() int { return 2 }

// Hyper implements Kernel.
func (k *Matern52) Hyper() []float64 { return []float64{k.logL, k.logSF} }

// SetHyper implements Kernel.
func (k *Matern52) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 2, "Matern52")
	k.logL, k.logSF = theta[0], theta[1]
}

// Bounds implements Kernel.
func (k *Matern52) Bounds() []Bounds { return []Bounds{DefaultBounds, DefaultBounds} }

// HyperNames implements Kernel.
func (k *Matern52) HyperNames() []string { return []string{"log_l", "log_sf"} }

// Name implements Kernel.
func (k *Matern52) Name() string { return "Matern52" }

// RationalQuadratic is a scale mixture of RBF kernels:
//
//	k(x, y) = σf² (1 + r²/(2 α l²))^{-α}
//
// θ = [log l, log σf, log α].
type RationalQuadratic struct {
	logL, logSF, logAlpha float64
}

// NewRationalQuadratic returns an RQ kernel with length scale l, amplitude
// sf, and mixture parameter alpha.
func NewRationalQuadratic(l, sf, alpha float64) *RationalQuadratic {
	if l <= 0 || sf <= 0 || alpha <= 0 {
		panic("kernel: RationalQuadratic parameters must be positive")
	}
	return &RationalQuadratic{logL: math.Log(l), logSF: math.Log(sf), logAlpha: math.Log(alpha)}
}

// Eval implements Kernel.
func (k *RationalQuadratic) Eval(x, y []float64) float64 {
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	alpha := math.Exp(k.logAlpha)
	base := 1 + sqDist(x, y)/(2*alpha*l*l)
	return sf2 * math.Pow(base, -alpha)
}

// EvalGrad implements Kernel. With u = r²/(2αl²), base = 1+u:
//
//	∂k/∂log l  = k · 2αu/base
//	∂k/∂log σf = 2k
//	∂k/∂log α  = k · α(u/base − log base)
func (k *RationalQuadratic) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 3, "RationalQuadratic")
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	alpha := math.Exp(k.logAlpha)
	u := sqDist(x, y) / (2 * alpha * l * l)
	base := 1 + u
	v := sf2 * math.Pow(base, -alpha)
	grad[0] = v * 2 * alpha * u / base
	grad[1] = 2 * v
	grad[2] = v * alpha * (u/base - math.Log(base))
	return v
}

// NumHyper implements Kernel.
func (k *RationalQuadratic) NumHyper() int { return 3 }

// Hyper implements Kernel.
func (k *RationalQuadratic) Hyper() []float64 {
	return []float64{k.logL, k.logSF, k.logAlpha}
}

// SetHyper implements Kernel.
func (k *RationalQuadratic) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 3, "RationalQuadratic")
	k.logL, k.logSF, k.logAlpha = theta[0], theta[1], theta[2]
}

// Bounds implements Kernel.
func (k *RationalQuadratic) Bounds() []Bounds {
	return []Bounds{DefaultBounds, DefaultBounds, {Lo: math.Log(1e-3), Hi: math.Log(1e3)}}
}

// HyperNames implements Kernel.
func (k *RationalQuadratic) HyperNames() []string {
	return []string{"log_l", "log_sf", "log_alpha"}
}

// Name implements Kernel.
func (k *RationalQuadratic) Name() string { return "RationalQuadratic" }
