package kernel

import "math"

// RBF is the isotropic squared-exponential (radial basis function) kernel
// used throughout the paper (Eq. 11):
//
//	k(x, y) = σf² exp(-|x-y|² / (2 l²))
//
// Hyperparameters in log space: θ = [log l, log σf].
type RBF struct {
	logL, logSF float64
	bounds      [2]Bounds
}

// NewRBF returns an RBF kernel with length scale l and amplitude sf
// (standard-deviation scale, so the prior variance is sf²).
func NewRBF(l, sf float64) *RBF {
	if l <= 0 || sf <= 0 {
		panic("kernel: RBF parameters must be positive")
	}
	return &RBF{
		logL:   math.Log(l),
		logSF:  math.Log(sf),
		bounds: [2]Bounds{DefaultBounds, DefaultBounds},
	}
}

// SetBounds replaces the log-space search bounds for (l, sf).
func (k *RBF) SetBounds(l, sf Bounds) { k.bounds = [2]Bounds{l, sf} }

// LengthScale returns l.
func (k *RBF) LengthScale() float64 { return math.Exp(k.logL) }

// Amplitude returns σf.
func (k *RBF) Amplitude() float64 { return math.Exp(k.logSF) }

// Eval implements Kernel.
func (k *RBF) Eval(x, y []float64) float64 {
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	return sf2 * math.Exp(-sqDist(x, y)/(2*l*l))
}

// EvalSq implements DistanceKernel: the kernel value as a function of
// the squared distance alone, enabling blocked cross-matrix assembly.
func (k *RBF) EvalSq(d2 float64) float64 {
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	return sf2 * math.Exp(-d2/(2*l*l))
}

// EvalGrad implements Kernel. With r² = |x-y|²:
//
//	∂k/∂log l  = k · r²/l²
//	∂k/∂log σf = 2k
func (k *RBF) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 2, "RBF")
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	r2 := sqDist(x, y)
	v := sf2 * math.Exp(-r2/(2*l*l))
	grad[0] = v * r2 / (l * l)
	grad[1] = 2 * v
	return v
}

// NumHyper implements Kernel.
func (k *RBF) NumHyper() int { return 2 }

// Hyper implements Kernel.
func (k *RBF) Hyper() []float64 { return []float64{k.logL, k.logSF} }

// SetHyper implements Kernel.
func (k *RBF) SetHyper(theta []float64) {
	checkHyperLen(len(theta), 2, "RBF")
	k.logL, k.logSF = theta[0], theta[1]
}

// Bounds implements Kernel.
func (k *RBF) Bounds() []Bounds { return []Bounds{k.bounds[0], k.bounds[1]} }

// HyperNames implements Kernel.
func (k *RBF) HyperNames() []string { return []string{"log_l", "log_sf"} }

// Name implements Kernel.
func (k *RBF) Name() string { return "RBF" }

// ARD is the squared-exponential kernel with one length scale per input
// dimension (automatic relevance determination):
//
//	k(x, y) = σf² exp(-½ Σ_d (x_d - y_d)² / l_d²)
//
// θ = [log l_1, …, log l_D, log σf].
type ARD struct {
	logL   []float64
	logSF  float64
	bounds []Bounds
}

// NewARD returns an ARD kernel with per-dimension length scales ls and
// amplitude sf.
func NewARD(ls []float64, sf float64) *ARD {
	if len(ls) == 0 {
		panic("kernel: ARD needs at least one dimension")
	}
	k := &ARD{logL: make([]float64, len(ls)), logSF: math.Log(sf)}
	for i, l := range ls {
		if l <= 0 {
			panic("kernel: ARD length scales must be positive")
		}
		k.logL[i] = math.Log(l)
	}
	k.bounds = make([]Bounds, len(ls)+1)
	for i := range k.bounds {
		k.bounds[i] = DefaultBounds
	}
	return k
}

// LengthScales returns the per-dimension length scales.
func (k *ARD) LengthScales() []float64 {
	out := make([]float64, len(k.logL))
	for i, v := range k.logL {
		out[i] = math.Exp(v)
	}
	return out
}

// Eval implements Kernel.
func (k *ARD) Eval(x, y []float64) float64 {
	checkHyperLen(len(x), len(k.logL), "ARD input")
	var s float64
	for d, xv := range x {
		l := math.Exp(k.logL[d])
		dd := (xv - y[d]) / l
		s += dd * dd
	}
	return math.Exp(2*k.logSF) * math.Exp(-0.5*s)
}

// EvalGrad implements Kernel.
func (k *ARD) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), k.NumHyper(), "ARD")
	checkHyperLen(len(x), len(k.logL), "ARD input")
	var s float64
	scaled := make([]float64, len(x))
	for d, xv := range x {
		l := math.Exp(k.logL[d])
		dd := (xv - y[d]) / l
		scaled[d] = dd * dd
		s += scaled[d]
	}
	v := math.Exp(2*k.logSF) * math.Exp(-0.5*s)
	for d := range k.logL {
		grad[d] = v * scaled[d] // ∂k/∂log l_d = k · (x_d-y_d)²/l_d²
	}
	grad[len(k.logL)] = 2 * v
	return v
}

// NumHyper implements Kernel.
func (k *ARD) NumHyper() int { return len(k.logL) + 1 }

// Hyper implements Kernel.
func (k *ARD) Hyper() []float64 {
	out := make([]float64, 0, k.NumHyper())
	out = append(out, k.logL...)
	return append(out, k.logSF)
}

// SetHyper implements Kernel.
func (k *ARD) SetHyper(theta []float64) {
	checkHyperLen(len(theta), k.NumHyper(), "ARD")
	copy(k.logL, theta[:len(k.logL)])
	k.logSF = theta[len(k.logL)]
}

// Bounds implements Kernel.
func (k *ARD) Bounds() []Bounds {
	out := make([]Bounds, len(k.bounds))
	copy(out, k.bounds)
	return out
}

// HyperNames implements Kernel.
func (k *ARD) HyperNames() []string {
	names := make([]string, 0, k.NumHyper())
	for d := range k.logL {
		names = append(names, "log_l"+itoa(d))
	}
	return append(names, "log_sf")
}

// Name implements Kernel.
func (k *ARD) Name() string { return "ARD" }

func itoa(d int) string {
	if d < 10 {
		return string(rune('0' + d))
	}
	return itoa(d/10) + itoa(d%10)
}
