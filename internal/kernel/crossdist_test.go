package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestCrossMatrixDistMatchesCrossMatrix checks the blocked distance-based
// assembly against the generic per-pair evaluation loop on the RBF
// DistanceKernel, including a size that crosses the PairSqDist goroutine
// fan-out, and the pass-through for kernels with no EvalSq.
func TestCrossMatrixDistMatchesCrossMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	k := NewRBF(0.7, 1.3)
	for _, shape := range [][3]int{{4, 3, 2}, {9, 1, 4}, {150, 120, 30}} {
		n, m, d := shape[0], shape[1], shape[2]
		a, b := mat.New(n, d), mat.New(m, d)
		for i := range a.Raw() {
			a.Raw()[i] = 4 * rng.Float64()
		}
		for i := range b.Raw() {
			b.Raw()[i] = 4 * rng.Float64()
		}
		got := CrossMatrixDist(k, a, b)
		want := CrossMatrix(k, a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				// The norm-expansion d² differs from the direct (a−b)²
				// form only in the last bits; the kernel values must
				// agree far tighter than any model tolerance.
				if diff := math.Abs(got.At(i, j) - want.At(i, j)); diff > 1e-12 {
					t.Fatalf("%v: K[%d,%d] blocked %g vs direct %g (|Δ| = %g)",
						shape, i, j, got.At(i, j), want.At(i, j), diff)
				}
			}
		}
	}

	// Matern32 has no EvalSq: CrossMatrixDist must fall back to the
	// generic loop and agree exactly.
	m32 := NewMatern32(0.9, 1.1)
	a, b := mat.New(6, 3), mat.New(5, 3)
	for i := range a.Raw() {
		a.Raw()[i] = rng.NormFloat64()
	}
	for i := range b.Raw() {
		b.Raw()[i] = rng.NormFloat64()
	}
	got, want := CrossMatrixDist(m32, a, b), CrossMatrix(m32, a, b)
	for i := range got.Raw() {
		if got.Raw()[i] != want.Raw()[i] {
			t.Fatalf("fallback path diverged at element %d: %g vs %g", i, got.Raw()[i], want.Raw()[i])
		}
	}
}

// TestRBFEvalSqConsistent pins EvalSq(‖x−y‖²) = Eval(x, y) on the RBF —
// the identity the DistanceKernel fast path relies on.
func TestRBFEvalSqConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	k := NewRBF(0.6, 1.4)
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		var d2 float64
		for i := range x {
			d2 += (x[i] - y[i]) * (x[i] - y[i])
		}
		if got, want := k.EvalSq(d2), k.Eval(x, y); math.Abs(got-want) > 1e-15 {
			t.Fatalf("EvalSq(%g) = %g, Eval = %g", d2, got, want)
		}
	}
}
