package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func randPoint(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = 3 * rng.NormFloat64()
	}
	return p
}

// allKernels returns a fresh instance of every kernel family, with the
// input dimension each test should use.
func allKernels() []struct {
	k   Kernel
	dim int
} {
	return []struct {
		k   Kernel
		dim int
	}{
		{NewRBF(1.3, 0.8), 3},
		{NewARD([]float64{0.5, 2.0, 1.1}, 1.5), 3},
		{NewMatern32(0.9, 1.2), 3},
		{NewMatern52(1.7, 0.6), 3},
		{NewRationalQuadratic(1.1, 0.9, 2.0), 3},
		{NewConstant(0.7), 3},
		{NewLinear(0.5), 3},
		{NewSum(NewRBF(1, 1), NewConstant(0.3)), 3},
		{NewProduct(NewRBF(2, 1), NewMatern32(1, 0.5)), 3},
		{NewSum(NewProduct(NewRBF(1, 1), NewLinear(0.4)), NewMatern52(2, 1)), 3},
	}
}

// TestGradientsMatchFiniteDifferences is the load-bearing test: the LML
// optimizer relies on these analytic gradients being exact.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const h = 1e-6
	for _, tc := range allKernels() {
		k := tc.k
		for trial := 0; trial < 5; trial++ {
			x := randPoint(rng, tc.dim)
			y := randPoint(rng, tc.dim)
			nh := k.NumHyper()
			grad := make([]float64, nh)
			v := k.EvalGrad(x, y, grad)
			if !almostEq(v, k.Eval(x, y), 1e-13) {
				t.Fatalf("%s: EvalGrad value %g != Eval %g", k.Name(), v, k.Eval(x, y))
			}
			theta := k.Hyper()
			for p := 0; p < nh; p++ {
				tp := append([]float64(nil), theta...)
				tp[p] += h
				k.SetHyper(tp)
				fPlus := k.Eval(x, y)
				tp[p] -= 2 * h
				k.SetHyper(tp)
				fMinus := k.Eval(x, y)
				k.SetHyper(theta)
				fd := (fPlus - fMinus) / (2 * h)
				if !almostEq(grad[p], fd, 1e-5) && math.Abs(grad[p]-fd) > 1e-7 {
					t.Fatalf("%s: grad[%d] = %g, finite diff %g (x=%v y=%v)",
						k.Name(), p, grad[p], fd, x, y)
				}
			}
		}
	}
}

func TestKernelSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range allKernels() {
		for trial := 0; trial < 10; trial++ {
			x := randPoint(rng, tc.dim)
			y := randPoint(rng, tc.dim)
			if !almostEq(tc.k.Eval(x, y), tc.k.Eval(y, x), 1e-14) {
				t.Fatalf("%s not symmetric", tc.k.Name())
			}
		}
	}
}

// TestKernelMatrixPSD checks K + small jitter is positive definite for
// random input sets — the property GPR depends on.
func TestKernelMatrixPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range allKernels() {
		n := 12
		x := mat.New(n, tc.dim)
		for i := 0; i < n; i++ {
			copy(x.RawRow(i), randPoint(rng, tc.dim))
		}
		km := Matrix(tc.k, x)
		if !km.IsSymmetric(1e-12) {
			t.Fatalf("%s: Matrix not symmetric", tc.k.Name())
		}
		km.AddDiag(1e-8 * (1 + km.MaxAbs()))
		if _, err := mat.NewCholesky(km); err != nil {
			t.Fatalf("%s: kernel matrix not PSD: %v", tc.k.Name(), err)
		}
	}
}

func TestHyperRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range allKernels() {
		k := tc.k
		nh := k.NumHyper()
		theta := make([]float64, nh)
		for i := range theta {
			theta[i] = rng.NormFloat64()
		}
		k.SetHyper(theta)
		got := k.Hyper()
		for i := range theta {
			if got[i] != theta[i] {
				t.Fatalf("%s: Hyper round trip differs at %d", k.Name(), i)
			}
		}
		if len(k.Bounds()) != nh {
			t.Fatalf("%s: Bounds length %d != NumHyper %d", k.Name(), len(k.Bounds()), nh)
		}
		if len(k.HyperNames()) != nh {
			t.Fatalf("%s: HyperNames length %d != NumHyper %d", k.Name(), len(k.HyperNames()), nh)
		}
	}
}

func TestRBFKnownValues(t *testing.T) {
	k := NewRBF(1, 1)
	// Same point: σf² = 1.
	if got := k.Eval([]float64{0, 0}, []float64{0, 0}); !almostEq(got, 1, 1e-15) {
		t.Fatalf("k(x,x) = %g", got)
	}
	// Distance 1 with l=1: exp(-1/2).
	want := math.Exp(-0.5)
	if got := k.Eval([]float64{0}, []float64{1}); !almostEq(got, want, 1e-15) {
		t.Fatalf("k = %g, want %g", got, want)
	}
	if k.LengthScale() != 1 || k.Amplitude() != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestRBFDecreasesWithDistance(t *testing.T) {
	k := NewRBF(2, 1.5)
	prev := math.Inf(1)
	for r := 0.0; r < 10; r += 0.5 {
		v := k.Eval([]float64{0}, []float64{r})
		if v > prev {
			t.Fatalf("RBF not monotone decreasing at r=%g", r)
		}
		prev = v
	}
}

func TestARDAnisotropy(t *testing.T) {
	// Tiny length scale in dim 0 → distance in dim 0 kills correlation
	// much faster than in dim 1.
	k := NewARD([]float64{0.1, 10}, 1)
	v0 := k.Eval([]float64{0, 0}, []float64{1, 0})
	v1 := k.Eval([]float64{0, 0}, []float64{0, 1})
	if v0 >= v1 {
		t.Fatalf("ARD anisotropy broken: v0=%g v1=%g", v0, v1)
	}
	ls := k.LengthScales()
	if !almostEq(ls[0], 0.1, 1e-12) || !almostEq(ls[1], 10, 1e-12) {
		t.Fatalf("LengthScales = %v", ls)
	}
}

func TestMaternLimitsAtZeroDistance(t *testing.T) {
	x := []float64{1, 2}
	for _, k := range []Kernel{NewMatern32(1.5, 2), NewMatern52(1.5, 2)} {
		if got := k.Eval(x, x); !almostEq(got, 4, 1e-14) {
			t.Fatalf("%s k(x,x) = %g, want σf²=4", k.Name(), got)
		}
	}
}

func TestMaternSmoothnessOrdering(t *testing.T) {
	// At moderate distance, for equal (l, σf), rougher kernels decay
	// differently; check all stay in (0, σf²) and RBF ≥ Matern52 ≥
	// Matern32 does NOT generally hold, but all must be positive and
	// bounded by variance.
	x, y := []float64{0}, []float64{0.7}
	for _, k := range []Kernel{NewRBF(1, 1), NewMatern32(1, 1), NewMatern52(1, 1)} {
		v := k.Eval(x, y)
		if v <= 0 || v >= 1 {
			t.Fatalf("%s: k=%g out of (0,1)", k.Name(), v)
		}
	}
}

func TestRQApproachesRBFForLargeAlpha(t *testing.T) {
	rbf := NewRBF(1.5, 1)
	rq := NewRationalQuadratic(1.5, 1, 1e6)
	x, y := []float64{0, 0}, []float64{1, 0.5}
	if !almostEq(rbf.Eval(x, y), rq.Eval(x, y), 1e-5) {
		t.Fatalf("RQ(α→∞) %g != RBF %g", rq.Eval(x, y), rbf.Eval(x, y))
	}
}

func TestWhiteKernel(t *testing.T) {
	k := NewWhite(0.5)
	x := []float64{1, 2}
	if got := k.Eval(x, x); !almostEq(got, 0.25, 1e-15) {
		t.Fatalf("White k(x,x) = %g, want 0.25", got)
	}
	if got := k.Eval(x, []float64{1, 2.0001}); got != 0 {
		t.Fatalf("White off-diagonal = %g, want 0", got)
	}
	grad := make([]float64, 1)
	k.EvalGrad(x, []float64{9, 9}, grad)
	if grad[0] != 0 {
		t.Fatal("White gradient off-diagonal should be 0")
	}
}

func TestConstantAndLinear(t *testing.T) {
	c := NewConstant(2)
	if got := c.Eval(nil, nil); !almostEq(got, 4, 1e-15) {
		t.Fatalf("Constant = %g", got)
	}
	l := NewLinear(1)
	if got := l.Eval([]float64{1, 2}, []float64{3, 4}); !almostEq(got, 11, 1e-15) {
		t.Fatalf("Linear = %g", got)
	}
}

func TestSumProductValues(t *testing.T) {
	a := NewConstant(1) // 1
	b := NewConstant(2) // 4
	s := NewSum(a, b)
	if got := s.Eval(nil, nil); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Sum = %g", got)
	}
	p := NewProduct(a, b)
	if got := p.Eval(nil, nil); !almostEq(got, 4, 1e-15) {
		t.Fatalf("Product = %g", got)
	}
	if s.NumHyper() != 2 || p.NumHyper() != 2 {
		t.Fatal("composite NumHyper wrong")
	}
}

func TestFixedHidesHyper(t *testing.T) {
	f := NewFixed(NewRBF(1, 1))
	if f.NumHyper() != 0 || f.Hyper() != nil || f.Bounds() != nil {
		t.Fatal("Fixed should expose no hyperparameters")
	}
	if got := f.Eval([]float64{0}, []float64{0}); !almostEq(got, 1, 1e-15) {
		t.Fatalf("Fixed Eval = %g", got)
	}
}

func TestMatrixAndCross(t *testing.T) {
	k := NewRBF(1, 1)
	x := mat.NewFromRows([][]float64{{0}, {1}, {2}})
	km := Matrix(k, x)
	if km.Rows() != 3 || km.Cols() != 3 {
		t.Fatal("Matrix shape")
	}
	for i := 0; i < 3; i++ {
		if !almostEq(km.At(i, i), 1, 1e-15) {
			t.Fatalf("diag %g", km.At(i, i))
		}
	}
	star := mat.NewFromRows([][]float64{{0.5}})
	cm := CrossMatrix(k, star, x)
	if cm.Rows() != 1 || cm.Cols() != 3 {
		t.Fatal("CrossMatrix shape")
	}
	if !almostEq(cm.At(0, 0), k.Eval([]float64{0.5}, []float64{0}), 1e-15) {
		t.Fatal("CrossMatrix value")
	}
}

func TestMatrixGradConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	k := NewRBF(1.2, 0.7)
	x := mat.New(6, 2)
	for i := 0; i < 6; i++ {
		copy(x.RawRow(i), randPoint(rng, 2))
	}
	km, grads := MatrixGrad(k, x)
	km2 := Matrix(k, x)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !almostEq(km.At(i, j), km2.At(i, j), 1e-14) {
				t.Fatal("MatrixGrad K differs from Matrix")
			}
		}
	}
	if len(grads) != 2 {
		t.Fatalf("grads len %d", len(grads))
	}
	// Spot-check one gradient entry against EvalGrad.
	g := make([]float64, 2)
	k.EvalGrad(x.RawRow(0), x.RawRow(3), g)
	if !almostEq(grads[0].At(0, 3), g[0], 1e-14) || !almostEq(grads[1].At(0, 3), g[1], 1e-14) {
		t.Fatal("gradient matrices inconsistent with EvalGrad")
	}
	// Symmetry of gradient matrices.
	for p := range grads {
		if !grads[p].IsSymmetric(1e-13) {
			t.Fatalf("grad matrix %d not symmetric", p)
		}
	}
}

func TestVariances(t *testing.T) {
	k := NewRBF(1, 2)
	x := mat.NewFromRows([][]float64{{0}, {5}})
	v := Variances(k, x)
	for _, vv := range v {
		if !almostEq(vv, 4, 1e-14) {
			t.Fatalf("Variance = %g, want 4", vv)
		}
	}
}

func TestBoundsClamp(t *testing.T) {
	b := Bounds{Lo: -1, Hi: 1}
	if b.Clamp(-5) != -1 || b.Clamp(5) != 1 || b.Clamp(0.5) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

// Property: kernel value at identical points bounds the value anywhere
// (for stationary kernels).
func TestStationaryBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kernels := []Kernel{NewRBF(1, 1), NewMatern32(1, 1), NewMatern52(1, 1),
			NewRationalQuadratic(1, 1, 1)}
		k := kernels[rng.Intn(len(kernels))]
		x := randPoint(rng, 2)
		y := randPoint(rng, 2)
		return k.Eval(x, y) <= k.Eval(x, x)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewRBF(0, 1) },
		func() { NewRBF(1, -1) },
		func() { NewMatern32(-1, 1) },
		func() { NewMatern52(1, 0) },
		func() { NewRationalQuadratic(1, 1, 0) },
		func() { NewConstant(0) },
		func() { NewWhite(0) },
		func() { NewLinear(-2) },
		func() { NewARD(nil, 1) },
		func() { NewARD([]float64{0}, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkRBFMatrix200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	k := NewRBF(1, 1)
	x := mat.New(200, 2)
	for i := 0; i < 200; i++ {
		copy(x.RawRow(i), randPoint(rng, 2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matrix(k, x)
	}
}
