// Package kernel implements covariance functions for Gaussian process
// regression, together with analytic gradients with respect to
// log-hyperparameters, as required for Bayesian model selection by
// gradient ascent on the log marginal likelihood (Rasmussen & Williams
// ch. 5; paper §III, Eq. 11 is the RBF the paper uses throughout).
//
// All hyperparameters are exposed in log space: positivity is automatic
// and gradient ascent is much better conditioned when length scales and
// amplitudes span orders of magnitude, as they do for performance data.
//
// # Key types
//
//   - Kernel: the covariance interface — Eval, Hyper/SetHyper in log
//     space, analytic Grad per hyperparameter, and box Bounds for the
//     optimizer.
//   - NewRBF (Eq. 11), NewMatern32/NewMatern52, NewRationalQuadratic,
//     NewPeriodic, NewARD (per-dimension length scales for the full
//     3-variable model), NewConstant/NewWhite/NewLinear, and the
//     NewSum/NewProduct/NewFixed composites.
//   - Matrix / MatrixGrad / CrossMatrix: Gram-matrix assembly used by
//     internal/gp's fit and predict paths.
//
// # Concurrency contract
//
// Eval and Matrix assembly are safe for concurrent readers, but kernels
// carry mutable hyperparameters: SetHyper (called by the GP optimizer)
// must not race with any other use of the same kernel instance. Give
// each concurrently fitted GP its own kernel (LoopConfig.NewKernel
// exists for exactly this).
package kernel
