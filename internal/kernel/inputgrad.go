package kernel

import "math"

// InputGradient is implemented by kernels that expose the gradient of
// k(x, y) with respect to the first argument x. It powers gradient-based
// continuous candidate optimization (paper §VI: "Gradient-based methods,
// which are available with GPR, would provide an important benefit for
// problems with high-dimensional parameter spaces").
type InputGradient interface {
	// EvalInputGrad returns k(x, y) and writes ∂k/∂x_d into grad
	// (len(grad) == len(x)).
	EvalInputGrad(x, y []float64, grad []float64) float64
}

// EvalInputGrad implements InputGradient for RBF:
// ∂k/∂x_d = −k · (x_d − y_d)/l².
func (k *RBF) EvalInputGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), len(x), "RBF input gradient")
	l := math.Exp(k.logL)
	v := k.Eval(x, y)
	inv := 1 / (l * l)
	for d := range x {
		grad[d] = -v * (x[d] - y[d]) * inv
	}
	return v
}

// EvalInputGrad implements InputGradient for ARD:
// ∂k/∂x_d = −k · (x_d − y_d)/l_d².
func (k *ARD) EvalInputGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), len(x), "ARD input gradient")
	v := k.Eval(x, y)
	for d := range x {
		l := math.Exp(k.logL[d])
		grad[d] = -v * (x[d] - y[d]) / (l * l)
	}
	return v
}

// EvalInputGrad implements InputGradient for Matern52. With a = √5 r/l:
// k = σf²(1 + a + a²/3)e^{−a} and
// ∂k/∂x_d = −σf² · (5/(3l²)) · (1 + a) e^{−a} · (x_d − y_d).
func (k *Matern52) EvalInputGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), len(x), "Matern52 input gradient")
	l := math.Exp(k.logL)
	sf2 := math.Exp(2 * k.logSF)
	r2 := sqDist(x, y)
	a := math.Sqrt(5*r2) / l
	e := math.Exp(-a)
	v := sf2 * (1 + a + a*a/3) * e
	coef := -sf2 * 5 / (3 * l * l) * (1 + a) * e
	for d := range x {
		grad[d] = coef * (x[d] - y[d])
	}
	return v
}

// EvalInputGrad implements InputGradient for Sum when both parts do.
func (k *Sum) EvalInputGrad(x, y []float64, grad []float64) float64 {
	ga, ok1 := k.A.(InputGradient)
	gb, ok2 := k.B.(InputGradient)
	if !ok1 || !ok2 {
		panic("kernel: Sum input gradient requires both parts to implement InputGradient")
	}
	tmp := make([]float64, len(grad))
	va := ga.EvalInputGrad(x, y, grad)
	vb := gb.EvalInputGrad(x, y, tmp)
	for i := range grad {
		grad[i] += tmp[i]
	}
	return va + vb
}

// EvalInputGrad implements InputGradient for Product when both parts do.
func (k *Product) EvalInputGrad(x, y []float64, grad []float64) float64 {
	ga, ok1 := k.A.(InputGradient)
	gb, ok2 := k.B.(InputGradient)
	if !ok1 || !ok2 {
		panic("kernel: Product input gradient requires both parts to implement InputGradient")
	}
	tmp := make([]float64, len(grad))
	va := ga.EvalInputGrad(x, y, grad)
	vb := gb.EvalInputGrad(x, y, tmp)
	for i := range grad {
		grad[i] = grad[i]*vb + va*tmp[i]
	}
	return va * vb
}

// EvalInputGrad implements InputGradient for Constant (zero gradient).
func (k *Constant) EvalInputGrad(x, _ []float64, grad []float64) float64 {
	for i := range grad {
		grad[i] = 0
	}
	return math.Exp(2 * k.logC)
}
