package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestPeriodicPeriodicity(t *testing.T) {
	k := NewPeriodic(1, 1, 2) // period 2
	x := []float64{0.3}
	for _, shift := range []float64{2, 4, 6} {
		a := k.Eval(x, []float64{x[0]})
		b := k.Eval(x, []float64{x[0] + shift})
		if !almostEq(a, b, 1e-12) {
			t.Fatalf("k not periodic at shift %g: %g vs %g", shift, a, b)
		}
	}
	// Half-period is the point of least similarity.
	mid := k.Eval(x, []float64{x[0] + 1})
	if mid >= k.Eval(x, x) {
		t.Fatal("half-period similarity should be below same-point")
	}
}

func TestPeriodicGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := NewPeriodic(0.8, 1.2, 1.5)
	const h = 1e-6
	for trial := 0; trial < 10; trial++ {
		x := []float64{3 * rng.NormFloat64()}
		y := []float64{3 * rng.NormFloat64()}
		grad := make([]float64, 3)
		v := k.EvalGrad(x, y, grad)
		if !almostEq(v, k.Eval(x, y), 1e-13) {
			t.Fatal("EvalGrad value mismatch")
		}
		theta := k.Hyper()
		for p := 0; p < 3; p++ {
			tp := append([]float64(nil), theta...)
			tp[p] += h
			k.SetHyper(tp)
			fPlus := k.Eval(x, y)
			tp[p] -= 2 * h
			k.SetHyper(tp)
			fMinus := k.Eval(x, y)
			k.SetHyper(theta)
			fd := (fPlus - fMinus) / (2 * h)
			if !almostEq(grad[p], fd, 1e-5) && math.Abs(grad[p]-fd) > 1e-7 {
				t.Fatalf("grad[%d] = %g, fd %g", p, grad[p], fd)
			}
		}
	}
}

func TestPeriodicPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := NewPeriodic(1, 1, 1)
	x := mat.New(10, 1)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, 3*rng.NormFloat64())
	}
	km := Matrix(k, x)
	km.AddDiag(1e-8)
	if _, err := mat.NewCholesky(km); err != nil {
		t.Fatalf("Periodic kernel matrix not PSD: %v", err)
	}
}

func TestPeriodicValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPeriodic(1, 1, 0)
}

func TestLocallyPeriodicComposite(t *testing.T) {
	// Periodic × RBF: periodic correlation that decays with distance.
	lp := NewProduct(NewPeriodic(1, 1, 1), NewRBF(5, 1))
	x := []float64{0}
	near := lp.Eval(x, []float64{1}) // one full period away
	far := lp.Eval(x, []float64{10}) // ten periods away
	if far >= near {
		t.Fatalf("locally periodic kernel should decay: near %g, far %g", near, far)
	}
	if lp.NumHyper() != 5 {
		t.Fatalf("NumHyper = %d", lp.NumHyper())
	}
}
