package kernel

// Sum is the kernel k(x, y) = a(x, y) + b(x, y). Hyperparameters are the
// concatenation [θ_a, θ_b].
type Sum struct {
	A, B Kernel
}

// NewSum returns the sum kernel a + b.
func NewSum(a, b Kernel) *Sum { return &Sum{A: a, B: b} }

// Eval implements Kernel.
func (k *Sum) Eval(x, y []float64) float64 { return k.A.Eval(x, y) + k.B.Eval(x, y) }

// EvalGrad implements Kernel.
func (k *Sum) EvalGrad(x, y []float64, grad []float64) float64 {
	na := k.A.NumHyper()
	checkHyperLen(len(grad), na+k.B.NumHyper(), "Sum")
	va := k.A.EvalGrad(x, y, grad[:na])
	vb := k.B.EvalGrad(x, y, grad[na:])
	return va + vb
}

// NumHyper implements Kernel.
func (k *Sum) NumHyper() int { return k.A.NumHyper() + k.B.NumHyper() }

// Hyper implements Kernel.
func (k *Sum) Hyper() []float64 { return append(k.A.Hyper(), k.B.Hyper()...) }

// SetHyper implements Kernel.
func (k *Sum) SetHyper(theta []float64) {
	na := k.A.NumHyper()
	checkHyperLen(len(theta), na+k.B.NumHyper(), "Sum")
	k.A.SetHyper(theta[:na])
	k.B.SetHyper(theta[na:])
}

// Bounds implements Kernel.
func (k *Sum) Bounds() []Bounds { return append(k.A.Bounds(), k.B.Bounds()...) }

// HyperNames implements Kernel.
func (k *Sum) HyperNames() []string {
	names := make([]string, 0, k.NumHyper())
	for _, n := range k.A.HyperNames() {
		names = append(names, "a."+n)
	}
	for _, n := range k.B.HyperNames() {
		names = append(names, "b."+n)
	}
	return names
}

// Name implements Kernel.
func (k *Sum) Name() string { return k.A.Name() + "+" + k.B.Name() }

// Product is the kernel k(x, y) = a(x, y) · b(x, y). Hyperparameters are
// the concatenation [θ_a, θ_b].
type Product struct {
	A, B Kernel
}

// NewProduct returns the product kernel a · b.
func NewProduct(a, b Kernel) *Product { return &Product{A: a, B: b} }

// Eval implements Kernel.
func (k *Product) Eval(x, y []float64) float64 { return k.A.Eval(x, y) * k.B.Eval(x, y) }

// EvalGrad implements Kernel. Product rule:
// ∂(ab)/∂θ_a = b ∂a/∂θ_a, ∂(ab)/∂θ_b = a ∂b/∂θ_b.
func (k *Product) EvalGrad(x, y []float64, grad []float64) float64 {
	na := k.A.NumHyper()
	checkHyperLen(len(grad), na+k.B.NumHyper(), "Product")
	va := k.A.EvalGrad(x, y, grad[:na])
	vb := k.B.EvalGrad(x, y, grad[na:])
	for i := 0; i < na; i++ {
		grad[i] *= vb
	}
	for i := na; i < len(grad); i++ {
		grad[i] *= va
	}
	return va * vb
}

// NumHyper implements Kernel.
func (k *Product) NumHyper() int { return k.A.NumHyper() + k.B.NumHyper() }

// Hyper implements Kernel.
func (k *Product) Hyper() []float64 { return append(k.A.Hyper(), k.B.Hyper()...) }

// SetHyper implements Kernel.
func (k *Product) SetHyper(theta []float64) {
	na := k.A.NumHyper()
	checkHyperLen(len(theta), na+k.B.NumHyper(), "Product")
	k.A.SetHyper(theta[:na])
	k.B.SetHyper(theta[na:])
}

// Bounds implements Kernel.
func (k *Product) Bounds() []Bounds { return append(k.A.Bounds(), k.B.Bounds()...) }

// HyperNames implements Kernel.
func (k *Product) HyperNames() []string {
	names := make([]string, 0, k.NumHyper())
	for _, n := range k.A.HyperNames() {
		names = append(names, "a."+n)
	}
	for _, n := range k.B.HyperNames() {
		names = append(names, "b."+n)
	}
	return names
}

// Name implements Kernel.
func (k *Product) Name() string { return k.A.Name() + "*" + k.B.Name() }

// Fixed wraps a kernel and hides its hyperparameters from optimization;
// Eval passes through unchanged. Useful for ablations where one component
// is held at known-good values.
type Fixed struct {
	K Kernel
}

// NewFixed returns k with frozen hyperparameters.
func NewFixed(k Kernel) *Fixed { return &Fixed{K: k} }

// Eval implements Kernel.
func (k *Fixed) Eval(x, y []float64) float64 { return k.K.Eval(x, y) }

// EvalGrad implements Kernel (no free hyperparameters, so no gradient).
func (k *Fixed) EvalGrad(x, y []float64, grad []float64) float64 {
	checkHyperLen(len(grad), 0, "Fixed")
	return k.K.Eval(x, y)
}

// NumHyper implements Kernel.
func (k *Fixed) NumHyper() int { return 0 }

// Hyper implements Kernel.
func (k *Fixed) Hyper() []float64 { return nil }

// SetHyper implements Kernel.
func (k *Fixed) SetHyper(theta []float64) { checkHyperLen(len(theta), 0, "Fixed") }

// Bounds implements Kernel.
func (k *Fixed) Bounds() []Bounds { return nil }

// HyperNames implements Kernel.
func (k *Fixed) HyperNames() []string { return nil }

// Name implements Kernel.
func (k *Fixed) Name() string { return "Fixed(" + k.K.Name() + ")" }
