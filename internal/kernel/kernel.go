package kernel

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Bounds is an inclusive box constraint on one log-hyperparameter.
type Bounds struct {
	Lo, Hi float64
}

// Clamp returns v restricted to [Lo, Hi].
func (b Bounds) Clamp(v float64) float64 {
	if v < b.Lo {
		return b.Lo
	}
	if v > b.Hi {
		return b.Hi
	}
	return v
}

// DefaultBounds spans length scales / amplitudes from 1e-5 to 1e5.
var DefaultBounds = Bounds{Lo: math.Log(1e-5), Hi: math.Log(1e5)}

// Kernel is a positive semi-definite covariance function k(x, x') with
// differentiable log-hyperparameters.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64

	// EvalGrad returns k(x, y) and writes ∂k/∂θ_i into grad, where θ is
	// the log-hyperparameter vector. len(grad) must equal NumHyper.
	EvalGrad(x, y []float64, grad []float64) float64

	// NumHyper returns the number of hyperparameters.
	NumHyper() int

	// Hyper returns a copy of the current log-hyperparameters.
	Hyper() []float64

	// SetHyper replaces the log-hyperparameters.
	SetHyper(theta []float64)

	// Bounds returns per-hyperparameter log-space box constraints, one
	// entry per hyperparameter.
	Bounds() []Bounds

	// HyperNames returns a human-readable name per hyperparameter.
	HyperNames() []string

	// Name identifies the kernel family.
	Name() string
}

// Matrix fills the n x n covariance matrix K with K[i][j] = k(X_i, X_j),
// where X holds one input point per row.
func Matrix(k Kernel, x *mat.Dense) *mat.Dense {
	n := x.Rows()
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		xi := x.RawRow(i)
		for j := i; j < n; j++ {
			v := k.Eval(xi, x.RawRow(j))
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// DistanceKernel is the optional interface of isotropic kernels whose
// value depends on the inputs only through the squared Euclidean
// distance: k(x, y) = EvalSq(‖x−y‖²). Implementations unlock the
// cache-blocked cross-matrix assembly of CrossMatrixDist.
type DistanceKernel interface {
	Kernel
	EvalSq(d2 float64) float64
}

// CrossMatrixDist fills K*[i][j] = k(A_i, B_j) like CrossMatrix, but
// when k is a DistanceKernel it assembles the pairwise squared-distance
// matrix with mat.PairSqDist (the blocked-GEMM panel pattern) and maps
// it through EvalSq — the large-n path for sparse-GP Knm assembly.
// Non-distance kernels fall back to the generic evaluation loop.
// Note: the blocked distance uses ‖a‖²+‖b‖²−2a·b, which can differ from
// the direct (a−b)² form in the last floating-point bits; callers that
// pin bit-exact traces against the generic path should use CrossMatrix.
func CrossMatrixDist(k Kernel, a, b *mat.Dense) *mat.Dense {
	dk, ok := k.(DistanceKernel)
	if !ok {
		return CrossMatrix(k, a, b)
	}
	d2 := mat.PairSqDist(a, b)
	raw := d2.Raw()
	for i, v := range raw {
		raw[i] = dk.EvalSq(v)
	}
	return d2
}

// CrossMatrix fills the n x m matrix K* with K*[i][j] = k(A_i, B_j).
func CrossMatrix(k Kernel, a, b *mat.Dense) *mat.Dense {
	out := mat.New(a.Rows(), b.Rows())
	for i := 0; i < a.Rows(); i++ {
		ai := a.RawRow(i)
		for j := 0; j < b.Rows(); j++ {
			out.Set(i, j, k.Eval(ai, b.RawRow(j)))
		}
	}
	return out
}

// MatrixGrad fills K and one gradient matrix per hyperparameter:
// grads[p][i][j] = ∂k(X_i, X_j)/∂θ_p. Used by the LML gradient.
func MatrixGrad(k Kernel, x *mat.Dense) (kmat *mat.Dense, grads []*mat.Dense) {
	n := x.Rows()
	nh := k.NumHyper()
	kmat = mat.New(n, n)
	grads = make([]*mat.Dense, nh)
	for p := range grads {
		grads[p] = mat.New(n, n)
	}
	g := make([]float64, nh)
	for i := 0; i < n; i++ {
		xi := x.RawRow(i)
		for j := i; j < n; j++ {
			v := k.EvalGrad(xi, x.RawRow(j), g)
			kmat.Set(i, j, v)
			kmat.Set(j, i, v)
			for p, gv := range g {
				grads[p].Set(i, j, gv)
				grads[p].Set(j, i, gv)
			}
		}
	}
	return kmat, grads
}

// Variances returns the prior variance k(x_i, x_i) for each row of x.
func Variances(k Kernel, x *mat.Dense) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		xi := x.RawRow(i)
		out[i] = k.Eval(xi, xi)
	}
	return out
}

// sqDist returns |x-y|² and panics on dimension mismatch.
func sqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("kernel: dimension mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, xv := range x {
		d := xv - y[i]
		s += d * d
	}
	return s
}

func checkHyperLen(got, want int, name string) {
	if got != want {
		panic(fmt.Sprintf("kernel: %s expects %d hyperparameters, got %d", name, want, got))
	}
}
