package kernel

import (
	"math"
	"testing"
)

// TestGradGridFiniteDifferences sweeps every covariance family across a
// lengthscale/scale grid — including the extremes the LML optimizer
// visits when a fit goes wrong — and checks each analytic
// log-hyperparameter gradient against a central finite difference at
// h = 1e-6. Unlike the random-point check in kernel_test.go, the point
// table deliberately includes coincident and nearly-coincident inputs
// (where Matérn-family gradients hinge on |r| terms and White switches
// branches) and the family table includes every constructor the package
// exports.
func TestGradGridFiniteDifferences(t *testing.T) {
	families := []struct {
		name string
		make func(l float64) Kernel
	}{
		{"rbf", func(l float64) Kernel { return NewRBF(l, 0.9) }},
		{"ard", func(l float64) Kernel { return NewARD([]float64{l, 2 * l}, 1.1) }},
		{"matern32", func(l float64) Kernel { return NewMatern32(l, 1.2) }},
		{"matern52", func(l float64) Kernel { return NewMatern52(l, 0.7) }},
		{"rq", func(l float64) Kernel { return NewRationalQuadratic(l, 0.9, 1.7) }},
		{"periodic", func(l float64) Kernel { return NewPeriodic(l, 1.3, 2.1) }},
		{"constant", func(l float64) Kernel { return NewConstant(l) }},
		{"white", func(l float64) Kernel { return NewWhite(l) }},
		{"linear", func(l float64) Kernel { return NewLinear(l) }},
		{"sum", func(l float64) Kernel { return NewSum(NewRBF(l, 1), NewWhite(0.3*l)) }},
		{"product", func(l float64) Kernel { return NewProduct(NewMatern52(l, 1), NewLinear(0.8)) }},
		{"fixed+sum", func(l float64) Kernel { return NewSum(NewFixed(NewRBF(1, 1)), NewMatern32(l, 0.9)) }},
	}
	lengthscales := []float64{0.05, 0.3, 1, 3, 20}
	pairs := [][2][]float64{
		{{0.7, -1.2}, {0.7, -1.2}},        // coincident: the diagonal case
		{{0.7, -1.2}, {0.7 + 1e-4, -1.2}}, // nearly coincident
		{{0, 0}, {0.5, -0.3}},
		{{-2, 1.5}, {2, -1.5}}, // far apart (k ≈ 0 at small lengthscales)
		{{1, 1}, {1, -1}},
	}
	const h = 1e-6

	for _, fam := range families {
		for _, l := range lengthscales {
			k := fam.make(l)
			nh := k.NumHyper()
			if nh != len(k.Hyper()) || nh != len(k.HyperNames()) || nh != len(k.Bounds()) {
				t.Fatalf("%s(l=%g): NumHyper %d disagrees with Hyper/HyperNames/Bounds lengths", fam.name, l, nh)
			}
			for pi, pair := range pairs {
				x, y := pair[0], pair[1]
				grad := make([]float64, nh)
				v := k.EvalGrad(x, y, grad)
				if ev := k.Eval(x, y); !almostEq(v, ev, 1e-13) && math.Abs(v-ev) > 1e-300 {
					t.Fatalf("%s(l=%g) pair %d: EvalGrad value %g != Eval %g", fam.name, l, pi, v, ev)
				}
				theta := k.Hyper()
				for p := 0; p < nh; p++ {
					fd := centralDiff(k, theta, p, x, y, h)
					if !gradClose(grad[p], fd) {
						t.Errorf("%s(l=%g) pair %d, hyper %s: analytic %.12g, central diff %.12g",
							fam.name, l, pi, k.HyperNames()[p], grad[p], fd)
					}
				}
				k.SetHyper(theta)
			}
		}
	}
}

// centralDiff perturbs log-hyperparameter p by ±h and evaluates the
// symmetric difference quotient.
func centralDiff(k Kernel, theta []float64, p int, x, y []float64, h float64) float64 {
	tp := append([]float64(nil), theta...)
	tp[p] = theta[p] + h
	k.SetHyper(tp)
	fPlus := k.Eval(x, y)
	tp[p] = theta[p] - h
	k.SetHyper(tp)
	fMinus := k.Eval(x, y)
	k.SetHyper(theta)
	return (fPlus - fMinus) / (2 * h)
}

// gradClose allows the O(h²) truncation plus cancellation error of a
// central difference: 2e-5 relative, 5e-8 absolute floor (both sides of
// a vanished gradient — far pairs under tiny lengthscales — are ~0).
func gradClose(analytic, fd float64) bool {
	if math.IsNaN(analytic) || math.IsNaN(fd) {
		return false
	}
	d := math.Abs(analytic - fd)
	if d <= 5e-8 {
		return true
	}
	return d <= 2e-5*math.Max(math.Abs(analytic), math.Abs(fd))
}

// TestGradGridRepresentativeValues spot-checks two closed forms the
// finite-difference sweep cannot distinguish from an off-by-constant
// error: the RBF diagonal gradient and the White diagonal.
func TestGradGridRepresentativeValues(t *testing.T) {
	// RBF: k(x,x) = sf², ∂k/∂log sf = 2 sf², ∂k/∂log l = 0.
	sf := 0.8
	k := NewRBF(1.4, sf)
	grad := make([]float64, k.NumHyper())
	v := k.EvalGrad([]float64{1, 2}, []float64{1, 2}, grad)
	if !almostEq(v, sf*sf, 1e-14) {
		t.Errorf("rbf diagonal value %g, want sf² = %g", v, sf*sf)
	}
	names := k.HyperNames()
	for p, name := range names {
		var want float64
		if name == "log_sf" {
			want = 2 * sf * sf
		}
		if !almostEq(grad[p], want, 1e-12) && math.Abs(grad[p]-want) > 1e-12 {
			t.Errorf("rbf diagonal grad %s = %g, want %g", name, grad[p], want)
		}
	}

	// White: off-diagonal value and gradient are identically zero.
	w := NewWhite(0.5)
	wg := make([]float64, w.NumHyper())
	if v := w.EvalGrad([]float64{0}, []float64{1e-12}, wg); v != 0 || wg[0] != 0 {
		t.Errorf("white off-diagonal: value %g grad %v, want exactly 0", v, wg)
	}
	if v := w.EvalGrad([]float64{3}, []float64{3}, wg); !almostEq(v, 0.25, 1e-14) || !almostEq(wg[0], 0.5, 1e-14) {
		t.Errorf("white diagonal: value %g grad %g, want 0.25 and 0.5", v, wg[0])
	}
}
