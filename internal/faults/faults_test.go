package faults

import (
	"math"
	"testing"
)

func TestNilAndZeroInjectNothing(t *testing.T) {
	for _, inj := range []*Injector{nil, New(Config{Seed: 1})} {
		if inj.Enabled() {
			t.Fatal("disabled injector reports Enabled")
		}
		for job := 0; job < 100; job++ {
			if inj.JobFails(job, 0) || inj.NodeFails(job, 0) || inj.DropPowerSample(job, 0) {
				t.Fatalf("disabled injector injected a fault for job %d", job)
			}
			if f := inj.Slowdown(job, 0); f != 1 {
				t.Fatalf("disabled injector slowdown %g", f)
			}
			if y, bad := inj.Corrupt(job, 0, 1.5); bad || y != 1.5 {
				t.Fatalf("disabled injector corrupted %g", y)
			}
		}
	}
}

// Decisions must depend only on (seed, kind, keys), not on the sequence
// of prior calls — the property checkpoint/resume leans on.
func TestDeterministicAndOrderIndependent(t *testing.T) {
	cfg := CompositeConfig(42, 0.3)
	cfg.NodeFailRate = 0.1
	cfg.PowerDropRate = 0.2
	a, b := New(cfg), New(cfg)

	// Warm b with unrelated queries to shift any hidden state.
	for i := 0; i < 57; i++ {
		b.JobFails(i+1000, 3)
		b.Corrupt(i+2000, 1, 7)
	}
	for job := 0; job < 200; job++ {
		for attempt := 0; attempt < 3; attempt++ {
			if a.JobFails(job, attempt) != b.JobFails(job, attempt) {
				t.Fatalf("JobFails(%d,%d) order-dependent", job, attempt)
			}
			if a.NodeFails(job, attempt) != b.NodeFails(job, attempt) {
				t.Fatalf("NodeFails(%d,%d) order-dependent", job, attempt)
			}
			if a.Slowdown(job, attempt) != b.Slowdown(job, attempt) {
				t.Fatalf("Slowdown(%d,%d) order-dependent", job, attempt)
			}
			ya, oka := a.Corrupt(job, attempt, 2.5)
			yb, okb := b.Corrupt(job, attempt, 2.5)
			if oka != okb || (ya != yb && !(math.IsNaN(ya) && math.IsNaN(yb))) {
				t.Fatalf("Corrupt(%d,%d) order-dependent: %g/%v vs %g/%v",
					job, attempt, ya, oka, yb, okb)
			}
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	a := New(CompositeConfig(1, 0.5))
	b := New(CompositeConfig(2, 0.5))
	diff := 0
	for job := 0; job < 500; job++ {
		if a.JobFails(job, 0) != b.JobFails(job, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds made identical decisions")
	}
}

func TestRatesApproximatelyHonored(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{0.05, 0.1, 0.5} {
		inj := New(Config{Seed: 7, JobFailRate: rate, StragglerRate: rate, CorruptRate: rate})
		var fails, slow, corrupt int
		for job := 0; job < n; job++ {
			if inj.JobFails(job, 0) {
				fails++
			}
			if inj.Slowdown(job, 0) > 1 {
				slow++
			}
			if _, bad := inj.Corrupt(job, 0, 3); bad {
				corrupt++
			}
		}
		for name, got := range map[string]int{"jobfail": fails, "straggler": slow, "corrupt": corrupt} {
			frac := float64(got) / n
			if math.Abs(frac-rate) > 0.02 {
				t.Errorf("%s rate %.3f observed %.3f", name, rate, frac)
			}
		}
	}
}

func TestFailFractionInUnitInterval(t *testing.T) {
	inj := New(Config{Seed: 3, JobFailRate: 1})
	for job := 0; job < 1000; job++ {
		f := inj.FailFraction(job, 0)
		if !(f > 0 && f <= 1) {
			t.Fatalf("FailFraction(%d) = %g out of (0,1]", job, f)
		}
	}
}

// Corruption must produce every flavor the guards have to handle: NaN,
// +Inf, -Inf and finite gross outliers.
func TestCorruptionModes(t *testing.T) {
	inj := New(Config{Seed: 11, CorruptRate: 1, OutlierFactor: 100})
	var nan, posInf, negInf, outlier int
	for job := 0; job < 400; job++ {
		y, bad := inj.Corrupt(job, 0, 2.0)
		if !bad {
			t.Fatalf("rate-1 injector did not corrupt job %d", job)
		}
		switch {
		case math.IsNaN(y):
			nan++
		case math.IsInf(y, 1):
			posInf++
		case math.IsInf(y, -1):
			negInf++
		case y == 200:
			outlier++
		default:
			t.Fatalf("unexpected corruption value %g", y)
		}
	}
	if nan == 0 || posInf == 0 || negInf == 0 || outlier == 0 {
		t.Fatalf("corruption modes missing: nan=%d +inf=%d -inf=%d outlier=%d",
			nan, posInf, negInf, outlier)
	}
}

func TestStragglerFactorDefaultsAndApplies(t *testing.T) {
	inj := New(Config{Seed: 5, StragglerRate: 1})
	if f := inj.Slowdown(0, 0); f != 4 {
		t.Fatalf("default straggler factor %g, want 4", f)
	}
	inj = New(Config{Seed: 5, StragglerRate: 1, StragglerFactor: 2.5})
	if f := inj.Slowdown(0, 0); f != 2.5 {
		t.Fatalf("straggler factor %g, want 2.5", f)
	}
}
