package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestNetDecisionsDeterministic asserts every decision is a pure
// function of (seed, kind, keys): two injectors with the same seed
// agree everywhere, a different seed diverges somewhere.
func TestNetDecisionsDeterministic(t *testing.T) {
	cfg := NetworkConfig{Seed: 11, LatencyRate: 0.3, ResetRate: 0.3, PartialWriteRate: 0.3}
	a, b := NewNet(cfg), NewNet(cfg)
	cfg.Seed = 12
	c := NewNet(cfg)
	diverged := false
	for id := int64(0); id < 20; id++ {
		for op := int64(0); op < 20; op++ {
			if a.delay(id, op) != b.delay(id, op) {
				t.Fatalf("delay(%d,%d) differs under the same seed", id, op)
			}
			if a.resets(id, op) != b.resets(id, op) {
				t.Fatalf("resets(%d,%d) differs under the same seed", id, op)
			}
			ca, oka := a.partial(id, op, 100)
			cb, okb := b.partial(id, op, 100)
			if oka != okb || ca != cb {
				t.Fatalf("partial(%d,%d) differs under the same seed", id, op)
			}
			if a.resets(id, op) != c.resets(id, op) || a.delay(id, op) != c.delay(id, op) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 11 and 12 produced identical schedules")
	}
}

// TestNetRates checks empirical injection rates track the configured
// probabilities, and that a zero config injects nothing.
func TestNetRates(t *testing.T) {
	n := NewNet(NetworkConfig{Seed: 5, ResetRate: 0.25})
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if n.resets(int64(i), 1) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.20 || got > 0.30 {
		t.Fatalf("reset rate %.3f, want ≈0.25", got)
	}

	var zero *Net
	if zero.resets(1, 1) || zero.delay(1, 1) != 0 {
		t.Fatal("nil injector injected a fault")
	}
	if _, torn := zero.partial(1, 1, 100); torn {
		t.Fatal("nil injector tore a write")
	}
	quiet := NewNet(NetworkConfig{Seed: 9})
	for i := int64(0); i < 100; i++ {
		if quiet.resets(i, 0) || quiet.delay(i, 0) != 0 {
			t.Fatal("zero-rate injector injected a fault")
		}
	}
}

func TestPartialWriteBounds(t *testing.T) {
	n := NewNet(NetworkConfig{Seed: 3, PartialWriteRate: 1})
	for op := int64(0); op < 200; op++ {
		cut, ok := n.partial(1, op, 64)
		if !ok {
			t.Fatalf("op %d: rate 1 did not tear", op)
		}
		if cut < 1 || cut > 63 {
			t.Fatalf("op %d: cut %d outside [1, 63]", op, cut)
		}
	}
	// Writes too small to split pass through whole.
	if _, ok := n.partial(1, 1, 1); ok {
		t.Fatal("1-byte write torn")
	}
}

// TestChaosListenerResets serves HTTP through a reset-heavy listener and
// checks that requests fail with connection errors, not hangs, and that
// a fault-free listener passes everything through.
func TestChaosListenerResets(t *testing.T) {
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1024))
	}))
	srv.Listener = WrapListener(srv.Listener, NewNet(NetworkConfig{Seed: 21, ResetRate: 0.5}))
	srv.Start()
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	okCount, failCount := 0, 0
	for i := 0; i < 30; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			failCount++
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || len(body) != 1024 {
			failCount++
			continue
		}
		okCount++
	}
	if failCount == 0 {
		t.Fatal("reset rate 0.5 produced no failures")
	}
	if okCount == 0 {
		t.Fatal("no request survived — resets should be probabilistic, not total")
	}
}

func TestChaosListenerNilPassthrough(t *testing.T) {
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "clean")
	}))
	srv.Listener = WrapListener(srv.Listener, nil)
	srv.Start()
	defer srv.Close()
	for i := 0; i < 10; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d through nil chaos: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "clean" {
			t.Fatalf("request %d body %q", i, body)
		}
	}
}

// TestRoundTripperDuplicates asserts the duplicate fault really sends
// the request twice with an intact body each time.
func TestRoundTripperDuplicates(t *testing.T) {
	var calls atomic.Int32
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(data))
		calls.Add(1)
	}))
	defer srv.Close()

	rt := WrapRoundTripper(nil, NewNet(NetworkConfig{Seed: 2, DuplicateRate: 1}))
	client := &http.Client{Transport: rt}
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("obs"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want the duplicate pair", got)
	}
	for i, b := range bodies {
		if b != "obs" {
			t.Fatalf("send %d body %q, want %q", i, b, "obs")
		}
	}
}

// TestRoundTripperDropsResponse: the server processes the request but
// the client sees an error — the retry hazard idempotency must absorb.
func TestRoundTripperDropsResponse(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}))
	defer srv.Close()

	rt := WrapRoundTripper(nil, NewNet(NetworkConfig{Seed: 4, DropResponseRate: 1}))
	client := &http.Client{Transport: rt}
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("dropped response surfaced as success")
	}
	if !IsInjectedReset(errors.Unwrap(unwrapURLError(err))) && !IsInjectedReset(err) {
		// http.Client wraps transport errors in *url.Error.
		t.Fatalf("error %v does not carry the injected reset", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (request applied, response lost)", calls.Load())
	}
}

func unwrapURLError(err error) error {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err
		}
		err = u
	}
}

func TestRoundTripperNilPassthrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	client := &http.Client{Transport: WrapRoundTripper(nil, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}
}

func TestTearDecision(t *testing.T) {
	// Zero rate never tears.
	for seq := 0; seq < 100; seq++ {
		if _, torn := TearDecision(TornWriteConfig{Seed: 1}, seq); torn {
			t.Fatalf("seq %d torn at rate 0", seq)
		}
	}
	// Rate 1 always tears, with a usable fraction, deterministically.
	cfg := TornWriteConfig{Seed: 7, Rate: 1}
	for seq := 0; seq < 100; seq++ {
		f1, torn := TearDecision(cfg, seq)
		if !torn {
			t.Fatalf("seq %d not torn at rate 1", seq)
		}
		if f1 <= 0 || f1 >= 1 {
			t.Fatalf("seq %d fraction %v outside (0, 1)", seq, f1)
		}
		f2, _ := TearDecision(cfg, seq)
		if f1 != f2 {
			t.Fatalf("seq %d fraction not deterministic: %v vs %v", seq, f1, f2)
		}
	}
	// Intermediate rates land near the configured probability.
	hits := 0
	for seq := 0; seq < 4000; seq++ {
		if _, torn := TearDecision(TornWriteConfig{Seed: 13, Rate: 0.2}, seq); torn {
			hits++
		}
	}
	if rate := float64(hits) / 4000; rate < 0.15 || rate > 0.25 {
		t.Fatalf("tear rate %.3f, want ≈0.2", rate)
	}
}
