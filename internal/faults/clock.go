package faults

import (
	"sync"
	"time"
)

// Clock abstracts the time source for components whose behavior depends
// on elapsed time — the ring failure detector above all. Production
// code uses SystemClock; tests inject a FakeClock and advance it
// explicitly, so timing-sensitive state machines (suspicion scores,
// heartbeat schedules) are exercised deterministically with no real
// sleeps, even under -race.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time
	// once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// SystemClock is the production Clock: thin wrappers over package time.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a manually advanced Clock for deterministic tests. Time
// stands still until Advance moves it; every After/Sleep waiter whose
// deadline has passed fires during the Advance call. BlockUntil lets a
// test synchronize with the goroutines under test: it waits until at
// least n waiters are parked on the clock, which — for loops that do
// work strictly between two After calls — guarantees the previous
// round's work has completed before the test advances into the next.
type FakeClock struct {
	mu        sync.Mutex
	now       time.Time
	waiters   []*fakeWaiter
	blockReqs []blockReq
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

type blockReq struct {
	n  int
	ch chan struct{}
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. Non-positive durations fire immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &fakeWaiter{at: c.now.Add(d), ch: ch})
	c.notifyBlockedLocked()
	return ch
}

// Sleep implements Clock: it returns only once Advance has moved the
// clock past d.
func (c *FakeClock) Sleep(d time.Duration) { <-c.After(d) }

// Advance moves the clock forward by d and fires every waiter whose
// deadline is now due, in registration order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due, keep []*fakeWaiter
	for _, w := range c.waiters {
		if w.at.After(now) {
			keep = append(keep, w)
		} else {
			due = append(due, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// Waiters reports how many After/Sleep callers are currently parked.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// BlockUntil blocks until at least n waiters are parked on the clock.
func (c *FakeClock) BlockUntil(n int) {
	c.mu.Lock()
	if len(c.waiters) >= n {
		c.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	c.blockReqs = append(c.blockReqs, blockReq{n: n, ch: ch})
	c.mu.Unlock()
	<-ch
}

// notifyBlockedLocked releases BlockUntil callers whose threshold is
// met. Callers hold c.mu.
func (c *FakeClock) notifyBlockedLocked() {
	var keep []blockReq
	for _, r := range c.blockReqs {
		if len(c.waiters) >= r.n {
			close(r.ch)
		} else {
			keep = append(keep, r)
		}
	}
	c.blockReqs = keep
}
