package faults

import (
	"testing"
	"time"
)

// TestFakeClockAfter pins the waiter semantics the ring detector leans
// on: timers fire during Advance — exactly when due, never early — and
// non-positive durations fire immediately.
func TestFakeClockAfter(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))

	ch := fc.After(100 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before any Advance")
	default:
	}

	fc.Advance(99 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired 1ms early")
	default:
	}

	fc.Advance(1 * time.Millisecond)
	select {
	case at := <-ch:
		if want := time.Unix(0, 0).Add(100 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("timer delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}

	select {
	case <-fc.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	if got := fc.Now(); !got.Equal(time.Unix(0, 0).Add(100 * time.Millisecond)) {
		t.Fatalf("Now is %v after 100ms of advances", got)
	}
}

// TestFakeClockAdvanceFiresAllDue checks one big Advance releases every
// waiter whose deadline it crossed — and only those.
func TestFakeClockAdvanceFiresAllDue(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	short := fc.After(10 * time.Millisecond)
	long := fc.After(50 * time.Millisecond)
	later := fc.After(time.Hour)

	fc.Advance(time.Second)
	for name, ch := range map[string]<-chan time.Time{"short": short, "long": long} {
		select {
		case <-ch:
		default:
			t.Fatalf("%s timer did not fire inside a covering Advance", name)
		}
	}
	select {
	case <-later:
		t.Fatal("one-hour timer fired after a one-second Advance")
	default:
	}
	if got := fc.Waiters(); got != 1 {
		t.Fatalf("%d waiters parked after the Advance, want 1 (the one-hour timer)", got)
	}
}

// TestFakeClockSleepAndBlockUntil exercises the test-synchronization
// pair: BlockUntil waits for n parked waiters, Sleep returns only once
// Advance passes its deadline.
func TestFakeClockSleepAndBlockUntil(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		fc.Sleep(time.Minute)
		close(done)
	}()

	fc.BlockUntil(1) // returns once the sleeper is parked
	select {
	case <-done:
		t.Fatal("Sleep returned before the clock advanced")
	default:
	}

	fc.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after a covering Advance")
	}

	// BlockUntil with the threshold already met must not block.
	fc.After(time.Hour)
	fc.BlockUntil(1)
}
