// Package faults is the deterministic fault injector behind the
// pipeline's failure model (DESIGN.md §8). It simulates the ways a real
// measurement campaign goes wrong — crashed nodes, failed jobs,
// straggling runs, corrupted readings, power-sample dropout — so the
// layers above (internal/cluster, internal/sched, internal/al) can be
// exercised and tested against a 10% bad day instead of a happy path.
//
// Every decision is a pure function of (seed, fault kind, caller keys):
// the injector is stateless, so the same seed produces the same faults
// regardless of call order, goroutine interleaving, or a checkpoint/
// resume cycle splitting the run in two. Callers key decisions by stable
// identifiers (job ID, attempt number, sample index), never by wall
// time.
//
// A nil *Injector is valid and injects nothing, so fault hooks can be
// left wired in production paths at zero cost.
package faults

import (
	"math"

	"repro/internal/obs"
)

// Injection counters (see OBSERVABILITY.md): one per fault kind, ticked
// at decision time so a chaos run can assert every injected fault is
// visible.
var (
	injJobFail   = obs.C("faults.injected.jobfail")
	injNodeFail  = obs.C("faults.injected.nodefail")
	injStraggler = obs.C("faults.injected.straggler")
	injCorrupt   = obs.C("faults.injected.corrupt")
	injPowerDrop = obs.C("faults.injected.powerdrop")
)

// Kind identifies one fault class.
type Kind int

// Fault kinds, in the order of the taxonomy in DESIGN.md §8.
const (
	// JobFail crashes one execution attempt partway through.
	JobFail Kind = iota
	// NodeFail takes the attempt's node down — the attempt dies like
	// JobFail but is accounted as a machine fault (SLURM NODE_FAIL).
	NodeFail
	// Straggler multiplies the attempt's runtime by Config.StragglerFactor.
	Straggler
	// CorruptMeasurement replaces a measured response with NaN, ±Inf, or
	// a gross outlier.
	CorruptMeasurement
	// PowerDropout drops one IPMI power sample from a trace.
	PowerDropout
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case JobFail:
		return "jobfail"
	case NodeFail:
		return "nodefail"
	case Straggler:
		return "straggler"
	case CorruptMeasurement:
		return "corrupt"
	case PowerDropout:
		return "powerdrop"
	default:
		return "unknown"
	}
}

// Config sets the per-kind injection rates (probabilities in [0, 1]) and
// fault magnitudes. The zero value injects nothing.
type Config struct {
	// Seed makes the injector deterministic; two injectors with the same
	// Seed and rates make identical decisions for identical keys.
	Seed int64

	// JobFailRate is the probability that one execution attempt fails.
	JobFailRate float64
	// NodeFailRate is the probability that one execution attempt is
	// killed by a node fault. Checked before JobFailRate.
	NodeFailRate float64
	// StragglerRate is the probability that an attempt runs slow.
	StragglerRate float64
	// StragglerFactor is the slowdown multiplier for stragglers
	// (default 4).
	StragglerFactor float64
	// CorruptRate is the probability that a measured response is
	// corrupted.
	CorruptRate float64
	// OutlierFactor scales the gross-outlier corruption mode: the
	// corrupted reading is the true value times this factor
	// (default 100).
	OutlierFactor float64
	// PowerDropRate is the probability that one power sample is lost.
	PowerDropRate float64
}

// CompositeConfig is the chaos-test shorthand: job failures, stragglers
// and corrupted measurements all at the same rate (the ISSUE's "10%
// composite fault rate" is CompositeConfig(seed, 0.10)).
func CompositeConfig(seed int64, rate float64) Config {
	return Config{
		Seed:          seed,
		JobFailRate:   rate,
		StragglerRate: rate,
		CorruptRate:   rate,
	}
}

// Injector makes deterministic fault decisions. The zero value and nil
// both inject nothing; construct a live one with New.
type Injector struct {
	cfg Config
}

// New returns an injector for the given configuration.
func New(cfg Config) *Injector {
	if cfg.StragglerFactor <= 1 {
		cfg.StragglerFactor = 4
	}
	if cfg.OutlierFactor <= 0 {
		cfg.OutlierFactor = 100
	}
	return &Injector{cfg: cfg}
}

// Enabled reports whether any fault kind has a positive rate.
func (inj *Injector) Enabled() bool {
	if inj == nil {
		return false
	}
	c := inj.cfg
	return c.JobFailRate > 0 || c.NodeFailRate > 0 || c.StragglerRate > 0 ||
		c.CorruptRate > 0 || c.PowerDropRate > 0
}

// splitmix64 finalizer: a high-quality 64-bit mixer (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators").
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 hashes (seed, kind, keys...) to a uniform draw in [0, 1). Distinct
// kinds are salted so decisions for the same keys are independent.
func (inj *Injector) u01(kind Kind, salt uint64, keys ...int) float64 {
	h := mix64(uint64(inj.cfg.Seed) ^ (uint64(kind+1) * 0xd6e8feb86659fd93) ^ salt)
	for _, k := range keys {
		h = mix64(h ^ uint64(int64(k)))
	}
	return float64(h>>11) / float64(1<<53)
}

// JobFails reports whether execution attempt `attempt` of job `job`
// crashes with a plain job failure.
func (inj *Injector) JobFails(job, attempt int) bool {
	if inj == nil || inj.cfg.JobFailRate <= 0 {
		return false
	}
	if inj.u01(JobFail, 0, job, attempt) < inj.cfg.JobFailRate {
		injJobFail.Inc()
		return true
	}
	return false
}

// NodeFails reports whether the attempt's node dies under it.
func (inj *Injector) NodeFails(job, attempt int) bool {
	if inj == nil || inj.cfg.NodeFailRate <= 0 {
		return false
	}
	if inj.u01(NodeFail, 0, job, attempt) < inj.cfg.NodeFailRate {
		injNodeFail.Inc()
		return true
	}
	return false
}

// FailFraction returns how far through its runtime the attempt got
// before dying, a deterministic draw in (0, 1]. Meaningful only after
// JobFails or NodeFails returned true for the same keys.
func (inj *Injector) FailFraction(job, attempt int) float64 {
	if inj == nil {
		return 1
	}
	f := inj.u01(JobFail, 0x51ab3f27, job, attempt)
	if f <= 0 {
		f = 0.5
	}
	return f
}

// Slowdown returns the straggler multiplier for the attempt: 1 normally,
// Config.StragglerFactor when the attempt straggles.
func (inj *Injector) Slowdown(job, attempt int) float64 {
	if inj == nil || inj.cfg.StragglerRate <= 0 {
		return 1
	}
	if inj.u01(Straggler, 0, job, attempt) < inj.cfg.StragglerRate {
		injStraggler.Inc()
		return inj.cfg.StragglerFactor
	}
	return 1
}

// Corrupt possibly corrupts a measured response, returning the value to
// record and whether corruption was injected. The corruption mode —
// NaN, +Inf, −Inf, or a gross outlier (y × OutlierFactor) — is itself a
// deterministic draw, so the guard layers above see every flavor of bad
// reading.
func (inj *Injector) Corrupt(job, attempt int, y float64) (float64, bool) {
	if inj == nil || inj.cfg.CorruptRate <= 0 {
		return y, false
	}
	if inj.u01(CorruptMeasurement, 0, job, attempt) >= inj.cfg.CorruptRate {
		return y, false
	}
	injCorrupt.Inc()
	switch mode := inj.u01(CorruptMeasurement, 0x9e3779b9, job, attempt); {
	case mode < 0.25:
		return math.NaN(), true
	case mode < 0.375:
		return math.Inf(1), true
	case mode < 0.5:
		return math.Inf(-1), true
	default:
		out := y * inj.cfg.OutlierFactor
		if out == 0 {
			out = inj.cfg.OutlierFactor
		}
		return out, true
	}
}

// DropPowerSample reports whether sample index `sample` of job `job`'s
// power trace is lost.
func (inj *Injector) DropPowerSample(job, sample int) bool {
	if inj == nil || inj.cfg.PowerDropRate <= 0 {
		return false
	}
	if inj.u01(PowerDropout, 0, job, sample) < inj.cfg.PowerDropRate {
		injPowerDrop.Inc()
		return true
	}
	return false
}
