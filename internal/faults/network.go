package faults

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Network-fault injection counters (see OBSERVABILITY.md).
var (
	injNetLatency   = obs.C("faults.injected.netlatency")
	injNetReset     = obs.C("faults.injected.netreset")
	injPartialWrite = obs.C("faults.injected.partialwrite")
	injDupRequest   = obs.C("faults.injected.dupreq")
	injRespDropped  = obs.C("faults.injected.respdrop")
	injTornJournal  = obs.C("faults.injected.tornwrite")
)

// Network fault kinds, extending the compute-path taxonomy of Kind for
// the serving stack's chaos layer (DESIGN.md §10).
const (
	// NetLatency injects a delay spike into one connection operation or
	// one client request.
	NetLatency Kind = iota + 100
	// NetReset kills a connection mid-operation (ECONNRESET seen by the
	// peer) or fails a client request before it is sent.
	NetReset
	// PartialWrite delivers only a prefix of one Write, then resets.
	PartialWrite
	// DuplicateRequest sends one client request twice — the at-least-once
	// hazard idempotency keys must absorb.
	DuplicateRequest
	// DropResponse performs the request but loses the response — the
	// server applied it, the client thinks it failed and retries.
	DropResponse
	// TornWrite truncates one journal append partway through, simulating
	// a crash mid-write.
	TornWrite
)

// NetworkConfig sets the rates (probabilities in [0, 1]) and magnitudes
// for the chaos network layer. The zero value injects nothing.
type NetworkConfig struct {
	// Seed makes every decision a pure function of (seed, kind, keys):
	// identical configs replay identical fault schedules.
	Seed int64

	// LatencyRate is the per-operation probability of a latency spike of
	// up to Latency (the actual spike is a deterministic draw in
	// (0, Latency]).
	LatencyRate float64
	// Latency is the maximum injected delay (default 10ms).
	Latency time.Duration

	// ResetRate is the per-operation probability that the connection is
	// reset (server side) or the request errors before sending (client
	// side).
	ResetRate float64

	// PartialWriteRate is the per-write probability that only a prefix
	// of the buffer is delivered before the connection dies.
	PartialWriteRate float64

	// DuplicateRate is the per-request probability that the client
	// transport sends the request twice.
	DuplicateRate float64

	// DropResponseRate is the per-request probability that the client
	// transport completes the request but discards the response and
	// reports a failure — the classic at-least-once double-send trigger.
	DropResponseRate float64
}

// Net makes deterministic network-fault decisions. A nil *Net injects
// nothing.
type Net struct {
	cfg NetworkConfig
	// conns numbers accepted connections; requests numbers transport
	// round trips. Both only order decisions — determinism comes from
	// hashing (seed, kind, id, op).
	conns    atomic.Int64
	requests atomic.Int64
}

// NewNet builds a network-fault injector.
func NewNet(cfg NetworkConfig) *Net {
	if cfg.Latency <= 0 {
		cfg.Latency = 10 * time.Millisecond
	}
	return &Net{cfg: cfg}
}

// u01 hashes (seed, kind, keys...) to a uniform draw in [0, 1),
// mirroring Injector.u01 with the same mixer.
func (n *Net) u01(kind Kind, salt uint64, keys ...int64) float64 {
	h := mix64(uint64(n.cfg.Seed) ^ (uint64(kind+1) * 0xd6e8feb86659fd93) ^ salt)
	for _, k := range keys {
		h = mix64(h ^ uint64(k))
	}
	return float64(h>>11) / float64(1<<53)
}

// delay returns the injected latency for (kind, id, op): 0 normally, a
// deterministic draw in (0, Latency] on a latency spike.
func (n *Net) delay(id, op int64) time.Duration {
	if n == nil || n.cfg.LatencyRate <= 0 {
		return 0
	}
	if n.u01(NetLatency, 0, id, op) >= n.cfg.LatencyRate {
		return 0
	}
	injNetLatency.Inc()
	frac := n.u01(NetLatency, 0xa5a5a5a5, id, op)
	d := time.Duration(frac * float64(n.cfg.Latency))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

func (n *Net) resets(id, op int64) bool {
	if n == nil || n.cfg.ResetRate <= 0 {
		return false
	}
	if n.u01(NetReset, 0, id, op) < n.cfg.ResetRate {
		injNetReset.Inc()
		return true
	}
	return false
}

// partial returns (cut, true) when write op on conn id delivers only
// cut bytes of size; cut is a deterministic draw in [1, size-1].
func (n *Net) partial(id, op int64, size int) (int, bool) {
	if n == nil || n.cfg.PartialWriteRate <= 0 || size < 2 {
		return 0, false
	}
	if n.u01(PartialWrite, 0, id, op) >= n.cfg.PartialWriteRate {
		return 0, false
	}
	injPartialWrite.Inc()
	frac := n.u01(PartialWrite, 0x517cc1b7, id, op)
	cut := 1 + int(frac*float64(size-1))
	if cut >= size {
		cut = size - 1
	}
	return cut, true
}

// errReset is the injected connection failure.
var errReset = errors.New("faults: injected connection reset")

// IsInjectedReset reports whether err is (or wraps) an injected
// connection reset or dropped response.
func IsInjectedReset(err error) bool { return errors.Is(err, errReset) }

// --- server side: chaos listener ---

// Listener wraps an accepted-connection stream with the chaos layer:
// connections served through it suffer latency spikes, resets and
// partial writes at the configured deterministic rates. A nil net (or
// all-zero rates) passes everything through untouched.
type Listener struct {
	net.Listener
	chaos *Net
}

// WrapListener wraps ln with the chaos layer driven by n.
func WrapListener(ln net.Listener, n *Net) *Listener {
	return &Listener{Listener: ln, chaos: n}
}

// Accept wraps the next connection in the fault layer.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil || l.chaos == nil {
		return c, err
	}
	id := l.chaos.conns.Add(1)
	return &chaosConn{Conn: c, chaos: l.chaos, id: id}, nil
}

// chaosConn injects faults on individual reads and writes. Operations
// are numbered per connection so decisions are deterministic per
// (seed, conn, op) even under goroutine interleaving.
type chaosConn struct {
	net.Conn
	chaos *Net
	id    int64
	ops   atomic.Int64

	mu   sync.Mutex
	dead bool
}

func (c *chaosConn) kill() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dead {
		c.dead = true
		c.Conn.Close()
	}
	return fmt.Errorf("%w (conn %d)", errReset, c.id)
}

func (c *chaosConn) Read(p []byte) (int, error) {
	op := c.ops.Add(1)
	if d := c.chaos.delay(c.id, op); d > 0 {
		time.Sleep(d)
	}
	if c.chaos.resets(c.id, op) {
		return 0, c.kill()
	}
	return c.Conn.Read(p)
}

func (c *chaosConn) Write(p []byte) (int, error) {
	op := c.ops.Add(1)
	if d := c.chaos.delay(c.id, op); d > 0 {
		time.Sleep(d)
	}
	if c.chaos.resets(c.id, op) {
		return 0, c.kill()
	}
	if cut, ok := c.chaos.partial(c.id, op, len(p)); ok {
		n, err := c.Conn.Write(p[:cut])
		if err != nil {
			return n, err
		}
		return n, c.kill()
	}
	return c.Conn.Write(p)
}

// --- client side: chaos round tripper ---

// RoundTripper injects client-visible network faults in front of a real
// http.RoundTripper: latency spikes, failed sends, duplicated requests
// and dropped responses. Place a retrying transport (for example
// resilience.Transport) OUTSIDE this one so the retries themselves
// travel through the chaos layer.
type RoundTripper struct {
	Base  http.RoundTripper
	chaos *Net
}

// WrapRoundTripper wraps base (http.DefaultTransport when nil) with the
// chaos layer driven by n.
func WrapRoundTripper(base http.RoundTripper, n *Net) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &RoundTripper{Base: base, chaos: n}
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.chaos == nil {
		return rt.Base.RoundTrip(req)
	}
	id := rt.chaos.requests.Add(1)
	if d := rt.chaos.delay(id, 0); d > 0 {
		time.Sleep(d)
	}
	if rt.chaos.resets(id, 0) {
		return nil, fmt.Errorf("%w (request %d unsent)", errReset, id)
	}

	// Duplicate: send the request an extra time first and discard that
	// response — the server sees the same request twice.
	if rt.dup(id) && req.GetBody != nil {
		injDupRequest.Inc()
		if body, err := req.GetBody(); err == nil {
			shadow := req.Clone(req.Context())
			shadow.Body = body
			if resp, err := rt.Base.RoundTrip(shadow); err == nil {
				resp.Body.Close()
			}
		}
		// The "real" send needs a fresh body too.
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		req = req.Clone(req.Context())
		req.Body = body
	}

	resp, err := rt.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	// Dropped response: the server processed the request, but the client
	// never learns — it must retry, and only idempotency keys keep the
	// retry from double-applying.
	if rt.dropResp(id) {
		injRespDropped.Inc()
		resp.Body.Close()
		return nil, fmt.Errorf("%w (request %d response lost)", errReset, id)
	}
	return resp, nil
}

func (rt *RoundTripper) dup(id int64) bool {
	n := rt.chaos
	return n.cfg.DuplicateRate > 0 && n.u01(DuplicateRequest, 0, id) < n.cfg.DuplicateRate
}

func (rt *RoundTripper) dropResp(id int64) bool {
	n := rt.chaos
	return n.cfg.DropResponseRate > 0 && n.u01(DropResponse, 0, id) < n.cfg.DropResponseRate
}

// --- storage side: torn journal appends ---

// TornWriteConfig drives TearWriter: Rate is the per-append probability
// of a torn write.
type TornWriteConfig struct {
	Seed int64
	Rate float64
}

// TearDecision reports whether append number seq tears, and the byte
// fraction delivered before the simulated crash (a deterministic draw
// in (0, 1)). Seq must be a stable identifier (the journal's append
// counter), never wall time.
func TearDecision(cfg TornWriteConfig, seq int) (frac float64, torn bool) {
	if cfg.Rate <= 0 {
		return 0, false
	}
	inj := &Net{cfg: NetworkConfig{Seed: cfg.Seed}}
	if inj.u01(TornWrite, 0, int64(seq)) >= cfg.Rate {
		return 0, false
	}
	injTornJournal.Inc()
	frac = inj.u01(TornWrite, 0x2545f491, int64(seq))
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	return frac, true
}
