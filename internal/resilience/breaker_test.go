package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker
// cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(0, 0)} }
func testBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.Now = clk.now
	return NewBreaker("test", cfg)
}

// step is one scripted breaker interaction.
type step struct {
	advance   time.Duration // clock movement before the step
	allow     bool          // call Allow, expect this result
	record    *bool         // call Record with this outcome (nil = skip)
	wantState State         // state after the step
}

func yes() *bool { b := true; return &b }
func no() *bool  { b := false; return &b }

// TestBreakerStateMachine is the table-driven walk through the
// closed→open→half-open→closed cycle, including probe accounting.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{
		Window:      4,
		MinSamples:  2,
		FailureRate: 0.5,
		Cooldown:    time.Second,
		Probes:      2,
	}
	cases := []struct {
		name  string
		cfg   *BreakerConfig // nil = the shared cfg above
		steps []step
	}{
		{
			name: "closed stays closed under successes",
			steps: []step{
				{allow: true, record: yes(), wantState: Closed},
				{allow: true, record: yes(), wantState: Closed},
				{allow: true, record: yes(), wantState: Closed},
				{allow: true, record: no(), wantState: Closed}, // 1/4 failures < 50%
			},
		},
		{
			name: "failure rate trips closed to open",
			steps: []step{
				{allow: true, record: no(), wantState: Closed}, // 1 sample < MinSamples
				{allow: true, record: no(), wantState: Open},   // 2/2 ≥ 50%
				{allow: false, wantState: Open},                // fail fast inside cooldown
			},
		},
		{
			name: "cooldown opens the probe gate, success x Probes closes",
			steps: []step{
				{allow: true, record: no(), wantState: Closed},
				{allow: true, record: no(), wantState: Open},
				{advance: 999 * time.Millisecond, allow: false, wantState: Open},
				{advance: time.Millisecond, allow: true, wantState: HalfOpen}, // cooldown elapsed
				{allow: true, wantState: HalfOpen},                            // second probe slot
				{allow: false, wantState: HalfOpen},                           // probe bound reached
				{record: yes(), wantState: HalfOpen},                          // 1 of 2 probe successes
				{record: yes(), wantState: Closed},                            // probes satisfied
				{allow: true, record: no(), wantState: Closed},                // window was reset
			},
		},
		{
			name: "half-open probe failure reopens and restarts cooldown",
			steps: []step{
				{allow: true, record: no(), wantState: Closed},
				{allow: true, record: no(), wantState: Open},
				{advance: time.Second, allow: true, wantState: HalfOpen},
				{record: no(), wantState: Open},
				{advance: 500 * time.Millisecond, allow: false, wantState: Open}, // cooldown restarted
				{advance: 500 * time.Millisecond, allow: true, wantState: HalfOpen},
				{record: yes(), wantState: HalfOpen},
				{allow: true, record: yes(), wantState: Closed},
			},
		},
		{
			name: "rolling window evicts old failures",
			// MinSamples = Window so the early mixed prefix cannot trip
			// before the window has wrapped.
			cfg: &BreakerConfig{Window: 4, MinSamples: 4, FailureRate: 0.5, Cooldown: time.Second, Probes: 2},
			steps: []step{
				{allow: true, record: no(), wantState: Closed},
				{allow: true, record: yes(), wantState: Closed},
				{allow: true, record: yes(), wantState: Closed},
				{allow: true, record: yes(), wantState: Closed}, // window [fail ok ok ok]: 1/4 < 50%
				// Next success evicts the old failure, so one following
				// failure is again only 1/4 — eviction keeps it closed.
				{allow: true, record: yes(), wantState: Closed},
				{allow: true, record: no(), wantState: Closed},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newClock()
			use := cfg
			if tc.cfg != nil {
				use = *tc.cfg
			}
			b := testBreaker(clk, use)
			for i, s := range tc.steps {
				clk.advance(s.advance)
				if s.record == nil {
					if got := b.Allow(); got != s.allow {
						t.Fatalf("step %d: Allow() = %v, want %v", i, got, s.allow)
					}
				} else {
					if s.allow {
						if !b.Allow() {
							t.Fatalf("step %d: Allow() = false, want true", i)
						}
					}
					b.Record(*s.record)
				}
				if got := b.State(); got != s.wantState {
					t.Fatalf("step %d: state %v, want %v", i, got, s.wantState)
				}
			}
		})
	}
}

func TestBreakerDo(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Second})
	boom := errors.New("boom")
	fail := func() error { return boom }
	ok := func() error { return nil }

	if err := b.Do(ok); err != nil {
		t.Fatalf("Do(ok): %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Do(fail); !errors.Is(err, boom) && !errors.Is(err, ErrOpen) {
			t.Fatalf("Do(fail) #%d: %v", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state %v after failures, want open", b.State())
	}
	err := b.Do(ok)
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker ran the op: %v", err)
	}
	var oe *OpenError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("open error carries no retry hint: %#v", err)
	}
	clk.advance(time.Second)
	if err := b.Do(ok); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker("defaults", BreakerConfig{})
	if b.cfg.Window != 20 || b.cfg.MinSamples != 5 || b.cfg.FailureRate != 0.5 ||
		b.cfg.Cooldown != time.Second || b.cfg.Probes != 1 {
		t.Fatalf("defaults not applied: %+v", b.cfg)
	}
	// MinSamples is clamped to the window.
	b2 := NewBreaker("clamp", BreakerConfig{Window: 3, MinSamples: 10})
	if b2.cfg.MinSamples != 3 {
		t.Fatalf("MinSamples %d, want clamped to 3", b2.cfg.MinSamples)
	}
}
