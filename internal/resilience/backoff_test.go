package resilience

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffCeiling checks the exponential ramp and its cap, including
// attempt numbers large enough to overflow a naive shift.
func TestBackoffCeiling(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second}
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{3, 800 * time.Millisecond},
		{4, 1600 * time.Millisecond},
		{5, 2 * time.Second}, // 3200ms capped
		{6, 2 * time.Second},
		{30, 2 * time.Second},
		{63, 2 * time.Second},  // would overflow int64 nanoseconds
		{500, 2 * time.Second}, // far past any overflow
		{-3, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := b.Ceiling(tc.attempt); got != tc.want {
			t.Errorf("Ceiling(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

// TestBackoffJitterBounds draws many delays per attempt and asserts
// full-jitter bounds: every delay in [0, ceiling], never past the cap,
// and the draws actually spread (not stuck at the ceiling).
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Cap: time.Second}
	rng := rand.New(rand.NewSource(42))
	for attempt := 0; attempt <= 12; attempt++ {
		ceil := b.Ceiling(attempt)
		var min, max time.Duration = ceil, 0
		for i := 0; i < 500; i++ {
			d := b.Delay(attempt, rng)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceil)
			}
			if d > b.Cap {
				t.Fatalf("attempt %d: delay %v beyond cap %v", attempt, d, b.Cap)
			}
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		// Full jitter: the spread should cover most of [0, ceil].
		if min > ceil/4 || max < 3*ceil/4 {
			t.Errorf("attempt %d: draws [%v, %v] do not spread over [0, %v]", attempt, min, max, ceil)
		}
	}
}

// TestBackoffDeterministic asserts identical seeds replay identical
// schedules — the property the chaos suite's reproducibility rests on.
func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 500 * time.Millisecond}
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 32; attempt++ {
		d1 := b.Delay(attempt, r1)
		d2 := b.Delay(attempt, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v under the same seed", attempt, d1, d2)
		}
	}
}

// TestBackoffCapEdgeCases drives the schedule through degenerate and
// extreme configurations: zero and negative Base/Cap (fall back to
// defaults), and ceilings saturated at MaxInt64 nanoseconds, where a
// naive inclusive draw (int64(ceil)+1) would overflow and panic inside
// rand.Int63n.
func TestBackoffCapEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	for _, b := range []Backoff{
		{},
		{Base: -time.Second},
		{Cap: -time.Minute},
		{Base: -1, Cap: -1},
	} {
		if got := b.Ceiling(0); got != 100*time.Millisecond {
			t.Errorf("%+v: Ceiling(0) = %v, want the 100ms default", b, got)
		}
		if got := b.Ceiling(1000); got != 5*time.Second {
			t.Errorf("%+v: Ceiling(1000) = %v, want the 5s default cap", b, got)
		}
		if d := b.Delay(4, rng); d < 0 || d > 5*time.Second {
			t.Errorf("%+v: Delay(4) = %v outside [0, 5s]", b, d)
		}
	}

	// Absurdly large schedules: ceiling pegged at MaxInt64 from attempt
	// zero. Delay must stay in range and must not panic.
	huge := Backoff{Base: time.Duration(math.MaxInt64), Cap: time.Duration(math.MaxInt64)}
	for _, attempt := range []int{0, 1, 62, 63, 64, 1 << 20} {
		if got := huge.Ceiling(attempt); got != time.Duration(math.MaxInt64) {
			t.Fatalf("huge: Ceiling(%d) = %v, want MaxInt64", attempt, got)
		}
		if d := huge.Delay(attempt, rng); d < 0 {
			t.Fatalf("huge: Delay(%d) = %v, negative", attempt, d)
		}
	}

	// A base one doubling away from overflow: the ramp must saturate at
	// Cap, never go negative.
	nearOverflow := Backoff{Base: time.Duration(math.MaxInt64/2 + 1), Cap: time.Duration(math.MaxInt64)}
	for attempt := 0; attempt < 8; attempt++ {
		c := nearOverflow.Ceiling(attempt)
		if c <= 0 {
			t.Fatalf("nearOverflow: Ceiling(%d) = %v", attempt, c)
		}
		if d := nearOverflow.Delay(attempt, rng); d < 0 {
			t.Fatalf("nearOverflow: Delay(%d) = %v, negative", attempt, d)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.Ceiling(0); got != 100*time.Millisecond {
		t.Errorf("default base ceiling %v, want 100ms", got)
	}
	if got := b.Ceiling(100); got != 5*time.Second {
		t.Errorf("default cap %v, want 5s", got)
	}
	// Cap below base is raised to base.
	b = Backoff{Base: time.Second, Cap: time.Millisecond}
	if got := b.Ceiling(5); got != time.Second {
		t.Errorf("cap<base ceiling %v, want 1s", got)
	}
	if d := b.Delay(3, nil); d < 0 || d > time.Second {
		t.Errorf("nil-rng delay %v out of range", d)
	}
}
