package resilience

import (
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

var (
	breakerOpened   = obs.C("resilience.breaker.opened")
	breakerRejected = obs.C("resilience.breaker.rejected")
)

// ErrOpen is returned (wrapped) by Breaker.Do when the breaker is
// rejecting calls without attempting them.
var ErrOpen = errors.New("resilience: circuit open")

// State is a circuit breaker state.
type State int

// Breaker states. Closed passes traffic and watches the failure rate;
// Open rejects everything until the cooldown elapses; HalfOpen lets a
// bounded number of probes through to test recovery.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value gets sane defaults from
// NewBreaker.
type BreakerConfig struct {
	// Window is the rolling outcome window size (default 20 outcomes).
	Window int
	// MinSamples is the minimum number of outcomes in the window before
	// the failure rate can trip the breaker (default 5).
	MinSamples int
	// FailureRate in (0, 1] trips the breaker when the windowed failure
	// fraction reaches it (default 0.5).
	FailureRate float64
	// Cooldown is how long an open breaker rejects before moving to
	// half-open (default 1s).
	Cooldown time.Duration
	// Probes is both the number of consecutive half-open successes
	// required to close and the bound on concurrent half-open probes
	// (default 1). A single probe failure reopens immediately.
	Probes int
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

// Breaker is a failure-rate-windowed circuit breaker, safe for
// concurrent use. Callers pair Allow with Record:
//
//	if !b.Allow() { return ErrOverloaded }
//	err := op()
//	b.Record(err == nil)
type Breaker struct {
	name string
	cfg  BreakerConfig

	stateGauge *obs.Gauge

	mu       sync.Mutex
	state    State
	ring     []bool // outcome window, true = failure
	idx      int    // next ring slot
	count    int    // outcomes currently in the ring
	fails    int    // failures currently in the ring
	openedAt time.Time
	probes   int // half-open probes in flight
	probeOK  int // consecutive half-open successes
}

// NewBreaker builds a breaker named for metrics/events
// (resilience.breaker.<name>.state).
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	if cfg.Window <= 0 {
		cfg.Window = 20
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 5
	}
	if cfg.MinSamples > cfg.Window {
		cfg.MinSamples = cfg.Window
	}
	if cfg.FailureRate <= 0 || cfg.FailureRate > 1 {
		cfg.FailureRate = 0.5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	b := &Breaker{
		name:       name,
		cfg:        cfg,
		ring:       make([]bool, cfg.Window),
		stateGauge: obs.G("resilience.breaker." + name + ".state"),
	}
	b.stateGauge.Set(float64(Closed))
	return b
}

// Allow reports whether a call may proceed. Every Allow()==true must be
// matched by exactly one Record. Open breakers transition to half-open
// here once the cooldown has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			breakerRejected.Inc()
			return false
		}
		b.transition(HalfOpen)
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.Probes {
			breakerRejected.Inc()
			return false
		}
		b.probes++
		return true
	}
	return false
}

// Record feeds one allowed call's outcome back into the breaker.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.observe(!ok)
		if b.count >= b.cfg.MinSamples &&
			float64(b.fails) >= b.cfg.FailureRate*float64(b.count) {
			b.trip()
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !ok {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.resetWindow()
			b.transition(Closed)
		}
	case Open:
		// A straggler from before the trip; the window is already void.
	}
}

// State returns the current state (open breakers past their cooldown
// still report Open until the next Allow).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Do runs op under the breaker: ErrOpen (wrapped with the breaker name)
// when rejecting, otherwise op's error with the outcome recorded.
func (b *Breaker) Do(op func() error) error {
	if !b.Allow() {
		return &OpenError{Name: b.name, RetryAfter: b.cfg.Cooldown}
	}
	err := op()
	b.Record(err == nil)
	return err
}

// OpenError is the fail-fast rejection from Breaker.Do; it wraps ErrOpen
// and carries a retry hint.
type OpenError struct {
	Name       string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OpenError) Error() string { return "resilience: circuit " + e.Name + " open" }

// Unwrap lets errors.Is(err, ErrOpen) match.
func (e *OpenError) Unwrap() error { return ErrOpen }

// observe pushes one outcome into the rolling window.
func (b *Breaker) observe(failed bool) {
	if b.count == len(b.ring) {
		if b.ring[b.idx] {
			b.fails--
		}
	} else {
		b.count++
	}
	b.ring[b.idx] = failed
	if failed {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.ring)
}

// trip opens the breaker and restarts the cooldown.
func (b *Breaker) trip() {
	b.openedAt = b.cfg.Now()
	b.probes = 0
	b.probeOK = 0
	b.resetWindow()
	breakerOpened.Inc()
	b.transition(Open)
}

func (b *Breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.idx, b.count, b.fails = 0, 0, 0
}

// transition records a state change on the gauge and event stream.
// Callers hold b.mu.
func (b *Breaker) transition(to State) {
	from := b.state
	b.state = to
	b.stateGauge.Set(float64(to))
	obs.Emit("resilience.breaker.state", map[string]any{
		"breaker": b.name, "from": from.String(), "to": to.String(),
	})
}
