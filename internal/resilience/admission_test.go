package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueue: 1})

	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}

	// Third request queues; it must park, not fail.
	queued := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	waitDepth(t, a, 3)

	// Fourth request finds the queue full → immediate shed.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated acquire: %v, want ErrSaturated", err)
	}

	// Freeing a slot admits the queued request.
	r1()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	r2()
	waitDepth(t, a, 0)
}

func TestAdmissionAcquireHonorsContext(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired acquire: %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("acquire blocked %v past its deadline", elapsed)
	}
	waitDepth(t, a, 1) // only the held slot remains
}

func TestAdmissionWatermarkHysteresis(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 4, MaxQueue: 4, HighWatermark: 3, LowWatermark: 1})
	if a.Degraded() {
		t.Fatal("fresh admission already degraded")
	}
	var rel []func()
	for i := 0; i < 3; i++ {
		r, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rel = append(rel, r)
	}
	if !a.Degraded() {
		t.Fatal("depth 3 ≥ high watermark 3, not degraded")
	}
	rel[0]()
	if !a.Degraded() {
		t.Fatal("depth 2 > low watermark 1 must stay degraded (hysteresis)")
	}
	rel[1]()
	if a.Degraded() {
		t.Fatal("depth 1 ≤ low watermark 1 should have recovered")
	}
	rel[2]()
}

func TestAdmissionTryAcquire(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})
	r, err := a.TryAcquire()
	if err != nil {
		t.Fatalf("try 1: %v", err)
	}
	if _, err := a.TryAcquire(); !errors.Is(err, ErrSaturated) {
		t.Fatalf("try 2: %v, want ErrSaturated", err)
	}
	r()
	if r2, err := a.TryAcquire(); err != nil {
		t.Fatalf("try after release: %v", err)
	} else {
		r2()
	}
}

// TestAdmissionConcurrent hammers Acquire/release from many goroutines;
// the invariant under -race is token conservation: depth returns to 0.
func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 4, MaxQueue: 8})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r, err := a.Acquire(context.Background())
				if err != nil {
					if !errors.Is(err, ErrSaturated) {
						t.Errorf("acquire: %v", err)
						return
					}
					continue
				}
				r()
			}
		}()
	}
	wg.Wait()
	if d := a.Depth(); d != 0 {
		t.Fatalf("depth %d after all releases, want 0", d)
	}
}

func waitDepth(t *testing.T, a *Admission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Depth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("depth stuck at %d, want %d", a.Depth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
