// Package resilience is the stdlib-only toolbox behind the campaign
// service's production hardening (DESIGN.md §10): the pieces that keep
// one bad client, one slow disk, or one burst of traffic from wedging
// the AL engines behind it.
//
// The package provides four independent primitives, composed by
// internal/serve and cmd/alserve:
//
//   - Breaker: a closed/open/half-open circuit breaker over a rolling
//     outcome window. Guards the scoring pool and the journal writer —
//     when a dependency is failing, callers fail fast instead of piling
//     goroutines onto it, and a bounded probe stream detects recovery.
//
//   - Backoff: capped exponential backoff with full jitter
//     (delay ~ U[0, min(cap, base·2^attempt)]), the retry schedule
//     recommended by the SRE-style retry-budget literature surveyed in
//     PAPERS.md. Deterministic under a seeded *rand.Rand.
//
//   - Admission: a bounded admission queue (in-flight limit plus a
//     bounded wait queue) that sheds load once saturated, with
//     watermark-based degraded-state reporting for health checks.
//
//   - Client / Transport: an http.RoundTripper wrapper that retries
//     transient failures (connection errors, 429/502/503/504) under a
//     Backoff schedule, honors Retry-After, and only ever retries
//     requests that are safe to replay (idempotent methods, rewindable
//     bodies, or requests carrying an Idempotency-Key header).
//
// Every state transition and shed decision is observable: the package
// emits resilience.breaker.* gauges/events and client.retry.count via
// internal/obs (see OBSERVABILITY.md for the catalog).
//
// Determinism contract: nothing in this package calls the global RNG.
// Jitter draws come from caller-supplied *rand.Rand values and breakers
// accept an injectable clock, so tests (and the chaos suite) replay
// identical schedules from identical seeds.
package resilience
