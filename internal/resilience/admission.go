package resilience

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
)

var (
	admissionShed  = obs.C("serve.admission.shed")
	admissionDepth = obs.G("serve.admission.depth")
)

// ErrSaturated is returned by Admission.Acquire when both the in-flight
// slots and the wait queue are full — the caller should shed the
// request (HTTP 429 + Retry-After) rather than block.
var ErrSaturated = errors.New("resilience: admission queue saturated")

// AdmissionConfig sizes an Admission controller. The zero value gets
// defaults from NewAdmission.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrently admitted requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot
	// (default 2×MaxInFlight). Arrivals beyond it are shed immediately.
	MaxQueue int
	// HighWatermark and LowWatermark hysteresis the degraded flag on
	// total depth (in-flight + queued): depth ≥ high → degraded, depth ≤
	// low → healthy. Defaults: high = MaxInFlight + MaxQueue/2, low =
	// MaxInFlight/2.
	HighWatermark, LowWatermark int
}

// Admission is the bounded admission queue in front of the serving
// stack: at most MaxInFlight requests run, at most MaxQueue wait, and
// everything else is shed with ErrSaturated so the caller can return
// 429 instead of stacking goroutines. Safe for concurrent use.
type Admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int
	queued   int
	degraded bool
	waiters  chan struct{} // one token per free in-flight slot
}

// NewAdmission builds an admission controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	} else if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 2 * cfg.MaxInFlight
	}
	if cfg.HighWatermark <= 0 {
		cfg.HighWatermark = cfg.MaxInFlight + cfg.MaxQueue/2
	}
	if cfg.LowWatermark <= 0 {
		cfg.LowWatermark = cfg.MaxInFlight / 2
	}
	if cfg.LowWatermark >= cfg.HighWatermark {
		cfg.LowWatermark = cfg.HighWatermark - 1
	}
	a := &Admission{cfg: cfg, waiters: make(chan struct{}, cfg.MaxInFlight)}
	for i := 0; i < cfg.MaxInFlight; i++ {
		a.waiters <- struct{}{}
	}
	return a
}

// Acquire admits one request, blocking in the bounded queue until a
// slot frees, the context ends, or the queue is already full
// (ErrSaturated, immediately). On success the caller MUST call the
// returned release function exactly once.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	if a.queued >= a.cfg.MaxQueue {
		// Shed: even a fast handler behind this depth would blow its
		// deadline; tell the client to come back later.
		a.mu.Unlock()
		admissionShed.Inc()
		return nil, ErrSaturated
	}
	a.queued++
	a.note()
	a.mu.Unlock()

	select {
	case <-a.waiters:
		a.mu.Lock()
		a.queued--
		a.inflight++
		a.note()
		a.mu.Unlock()
		return func() {
			a.mu.Lock()
			a.inflight--
			a.note()
			a.mu.Unlock()
			a.waiters <- struct{}{}
		}, nil
	case <-ctx.Done():
		a.mu.Lock()
		a.queued--
		a.note()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// TryAcquire is Acquire without queueing: an immediate slot or
// ErrSaturated.
func (a *Admission) TryAcquire() (release func(), err error) {
	select {
	case <-a.waiters:
		a.mu.Lock()
		a.inflight++
		a.note()
		a.mu.Unlock()
		return func() {
			a.mu.Lock()
			a.inflight--
			a.note()
			a.mu.Unlock()
			a.waiters <- struct{}{}
		}, nil
	default:
		admissionShed.Inc()
		return nil, ErrSaturated
	}
}

// Depth reports in-flight + queued requests.
func (a *Admission) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight + a.queued
}

// Degraded reports the watermark hysteresis state: true once depth has
// reached HighWatermark and until it falls back to LowWatermark.
func (a *Admission) Degraded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded
}

// note updates the depth gauge and watermark state; callers hold a.mu.
func (a *Admission) note() {
	depth := a.inflight + a.queued
	admissionDepth.Set(float64(depth))
	switch {
	case !a.degraded && depth >= a.cfg.HighWatermark:
		a.degraded = true
		obs.Emit("serve.admission.degraded", map[string]any{"depth": depth})
	case a.degraded && depth <= a.cfg.LowWatermark:
		a.degraded = false
		obs.Emit("serve.admission.recovered", map[string]any{"depth": depth})
	}
}
