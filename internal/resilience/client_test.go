package resilience

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// recordSleeps swaps the transport's sleeper for one that records the
// schedule instead of waiting.
func recordSleeps(t *Transport) *[]time.Duration {
	var sleeps []time.Duration
	t.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return nil
	}
	return &sleeps
}

func TestClientRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	tr := NewTransport(nil, TransportConfig{MaxAttempts: 5, Seed: 3,
		Backoff: Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond}})
	sleeps := recordSleeps(tr)
	client := &http.Client{Transport: tr}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("%d backoff sleeps, want 2", len(*sleeps))
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewTransport(nil, TransportConfig{MaxAttempts: 3,
		Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond}})
	sleeps := recordSleeps(tr)
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if len(*sleeps) != 1 || (*sleeps)[0] < 2*time.Second {
		t.Fatalf("Retry-After ignored: sleeps %v, want one ≥ 2s", *sleeps)
	}
}

func TestClientDoesNotRetryUnsafePost(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	tr := NewTransport(nil, TransportConfig{MaxAttempts: 5,
		Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond}})
	recordSleeps(tr)
	client := &http.Client{Transport: tr}

	// Plain POST with a body and no idempotency key: one attempt only,
	// and the 503 response is surfaced, not swallowed.
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 surfaced", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("unsafe POST attempted %d times, want 1", got)
	}
}

func TestClientRetriesPostWithIdempotencyKey(t *testing.T) {
	var calls atomic.Int32
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(data))
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewTransport(nil, TransportConfig{MaxAttempts: 5,
		Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond}})
	recordSleeps(tr)
	client := &http.Client{Transport: tr}

	req, err := http.NewRequest("POST", srv.URL, bytes.NewReader([]byte("observation")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(IdempotencyHeader, "obs-42")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("keyed POST attempted %d times, want 3", got)
	}
	for i, b := range bodies {
		if b != "observation" {
			t.Fatalf("attempt %d body %q — rewind lost the payload", i, b)
		}
	}
}

func TestClientRetriesConnectionError(t *testing.T) {
	// A listener that is closed immediately: every dial fails.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	tr := NewTransport(nil, TransportConfig{MaxAttempts: 3,
		Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond}})
	sleeps := recordSleeps(tr)
	client := &http.Client{Transport: tr}
	if _, err := client.Get(url); err == nil {
		t.Fatal("dial to closed server succeeded")
	}
	if len(*sleeps) != 2 {
		t.Fatalf("%d retries against dead server, want 2 (MaxAttempts-1)", len(*sleeps))
	}
}

func TestClientExhaustedBudgetSurfacesLastResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	tr := NewTransport(nil, TransportConfig{MaxAttempts: 2,
		Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond}})
	recordSleeps(tr)
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the final 429", resp.StatusCode)
	}
}

func TestClientSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleep under canceled ctx: %v", err)
	}
	if err := sleepCtx(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"":    0,
		"0":   0,
		"3":   3 * time.Second,
		"+3":  3 * time.Second, // Atoi accepts an explicit sign
		"-1":  0,
		"x":   0,
		"1.5": 0,
		"1e3": 0,
		" 3":  0,             // no whitespace trimming: the header is machine-written
		"300": maxRetryAfter, // exactly the clamp
		"301": maxRetryAfter,
		// Values that would overflow time.Duration if multiplied before
		// clamping: ~9.2e9 seconds flips the sign bit.
		"999999999999":        maxRetryAfter,
		"9223372036854775807": maxRetryAfter, // MaxInt64 seconds
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
	if got := parseRetryAfter("10"); got <= 0 || got > maxRetryAfter {
		t.Errorf("parseRetryAfter(10s) = %v, outside (0, %v]", got, maxRetryAfter)
	}
}
