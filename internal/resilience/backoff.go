package resilience

import (
	"math"
	"math/rand"
	"time"
)

// Backoff is a capped exponential backoff schedule with full jitter:
// the delay before retry attempt k (0-based) is drawn uniformly from
// [0, min(Cap, Base·2^k)]. Full jitter decorrelates retry storms — a
// thundering herd that failed together does not retry together.
type Backoff struct {
	// Base is the exponential ramp's first ceiling (default 100ms).
	Base time.Duration
	// Cap bounds every delay (default 5s). No drawn delay ever exceeds
	// it, regardless of attempt number.
	Cap time.Duration
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 5 * time.Second
	}
	if b.Cap < b.Base {
		b.Cap = b.Base
	}
	return b
}

// Ceiling returns the un-jittered ceiling for attempt k:
// min(Cap, Base·2^k), overflow-safe.
func (b Backoff) Ceiling(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= b.Cap || d <= 0 { // d <= 0 catches duration overflow
			return b.Cap
		}
	}
	if d > b.Cap {
		return b.Cap
	}
	return d
}

// Delay draws the full-jitter delay for attempt k from rng: uniform in
// [0, Ceiling(k)]. Deterministic under a seeded rng; rng must not be
// shared across goroutines without external locking (Transport locks).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	ceil := b.Ceiling(attempt)
	if ceil <= 0 {
		return 0
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	// The draw is inclusive of the ceiling, but int64(ceil)+1 overflows
	// to MinInt64 when ceil is MaxInt64 (reachable via a huge Base) and
	// Int63n panics on non-positive n — saturate instead.
	n := int64(ceil)
	if n < math.MaxInt64 {
		n++
	}
	return time.Duration(rng.Int63n(n))
}
