package resilience

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

var (
	clientRetries   = obs.C("client.retry.count")
	clientExhausted = obs.C("client.retry.exhausted")
)

// IdempotencyHeader carries the client-chosen idempotency key that lets
// the campaign service deduplicate an at-least-once observe (DESIGN.md
// §10). Requests bearing it are safe to retry even though they are
// POSTs.
const IdempotencyHeader = "Idempotency-Key"

// TransportConfig tunes a retrying Transport. The zero value gets sane
// defaults from NewTransport.
type TransportConfig struct {
	// Backoff is the retry schedule (defaults per Backoff).
	Backoff Backoff
	// MaxAttempts bounds total tries including the first (default 6).
	MaxAttempts int
	// Seed drives the jitter RNG (default 1), so a test's retry
	// schedule is reproducible.
	Seed int64
}

// Transport is an http.RoundTripper that retries transient failures —
// connection errors and 429/502/503/504 responses — under capped
// exponential backoff with full jitter, honoring Retry-After hints.
// It never retries a request it cannot safely replay: the method must
// be idempotent (GET/HEAD/OPTIONS/PUT/DELETE), or the request must
// carry IdempotencyHeader, and a consumed body must be rewindable via
// GetBody. Safe for concurrent use.
type Transport struct {
	base http.RoundTripper
	cfg  TransportConfig

	mu  sync.Mutex
	rng *rand.Rand

	// sleep is swapped by tests to capture the schedule without waiting.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewTransport wraps base (http.DefaultTransport when nil).
func NewTransport(base http.RoundTripper, cfg TransportConfig) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.Backoff = cfg.Backoff.withDefaults()
	return &Transport{
		base:  base,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		sleep: sleepCtx,
	}
}

// NewClient returns an *http.Client backed by a retrying Transport.
func NewClient(base http.RoundTripper, cfg TransportConfig) *http.Client {
	return &http.Client{Transport: NewTransport(base, cfg)}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		r := req
		if attempt > 0 && req.Body != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("resilience: rewind request body: %w", err)
			}
			r = req.Clone(req.Context())
			r.Body = body
		}
		resp, err := t.base.RoundTrip(r)
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}

		// Transient failure: retry only when safe and funded.
		canRetry := retryableRequest(req) && attempt+1 < t.cfg.MaxAttempts
		var retryAfter time.Duration
		if err != nil {
			lastErr = err
			if !canRetry {
				clientExhausted.Inc()
				return nil, lastErr
			}
		} else {
			if !canRetry {
				// Out of budget (or unsafe to replay): surface the final
				// 429/502/503/504 response to the caller untouched.
				clientExhausted.Inc()
				return resp, nil
			}
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = fmt.Errorf("resilience: HTTP %d from %s %s", resp.StatusCode, req.Method, req.URL)
			// The response is being abandoned for a retry; drain it so
			// the transport can reuse the connection.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
		}
		delay := t.delay(attempt)
		if retryAfter > delay {
			delay = retryAfter
		}
		clientRetries.Inc()
		if err := t.sleep(req.Context(), delay); err != nil {
			return nil, err
		}
	}
}

// delay draws the jittered backoff for attempt under the transport's
// lock (the RNG is not goroutine-safe).
func (t *Transport) delay(attempt int) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.Backoff.Delay(attempt, t.rng)
}

// retryableStatus reports response codes worth retrying: explicit
// backpressure (429) and transient upstream failures (502/503/504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryableRequest reports whether req is safe to send again: an
// idempotent method, an explicit idempotency key, or no body at all —
// and, when a body exists, it must be rewindable via GetBody.
func retryableRequest(req *http.Request) bool {
	if req.Body != nil && req.GetBody == nil {
		return false
	}
	switch req.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions,
		http.MethodPut, http.MethodDelete:
		return true
	}
	return req.Header.Get(IdempotencyHeader) != "" || req.Body == nil
}

// maxRetryAfter caps server-supplied Retry-After hints. A buggy or
// hostile server advertising an absurd delay must not park the client
// for hours — or overflow time.Duration, which multiplying first and
// checking later would (e.g. "999999999999" seconds).
const maxRetryAfter = 5 * time.Minute

// parseRetryAfter reads the delay-seconds form of Retry-After ("" or
// unparseable → 0; the HTTP-date form is deliberately unsupported, the
// campaign service always sends seconds). Hints above maxRetryAfter
// clamp to it, with the comparison done on raw seconds so oversized
// values never reach the Duration multiplication.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	if secs > int(maxRetryAfter/time.Second) {
		return maxRetryAfter
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
