// Command alrun executes one Active Learning realization on a dataset CSV
// (as written by algen) and prints the per-iteration monitoring record:
// selected-point SD, AMSD, test RMSE, and cumulative cost.
//
// Usage:
//
//	alrun -data performance.csv -response runtime_s -strategy cost-efficiency \
//	      -operator poisson1 -np 32 -iters 100 -floor 0.1 -seed 1
//
//	alrun -quick -metrics /tmp/m.jsonl   # no CSV needed: regenerate the
//	                                     # §V-B study subset in process and
//	                                     # dump the obs metrics as JSONL
//
// Observability (see OBSERVABILITY.md): -metrics streams span/event
// records and a final metric snapshot to a JSONL file; -pprof serves
// net/http/pprof on the given address for CPU/heap profiling while the
// loop runs; -summary prints the full metric report instead of the
// one-line digest.
//
// Fault tolerance (see DESIGN.md §8): -checkpoint writes a resumable
// JSON snapshot after every iteration; an interrupted run continues
// with -resume (pass -checkpoint too to keep checkpointing) and
// reproduces the uninterrupted selection trace exactly. SIGINT/SIGTERM
// flush the -metrics sink before exiting.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/obs"
)

func main() {
	data := flag.String("data", "", "dataset CSV (omit with -quick)")
	response := flag.String("response", dataset.RespRuntime, "response column")
	strategyName := flag.String("strategy", "variance-reduction",
		"selection strategy: variance-reduction | cost-efficiency | thompson | random | emcm")
	budget := flag.Float64("budget", 0, "stop once cumulative cost reaches this (0 = unlimited)")
	operator := flag.String("operator", "poisson1", "operator tag filter (empty = all)")
	np := flag.Float64("np", 32, "NP filter (0 = all)")
	iters := flag.Int("iters", 50, "AL iterations")
	floor := flag.Float64("floor", 0.1, "noise-level lower bound σn")
	nInitial := flag.Int("initial", 1, "initial (seed) experiments")
	testFrac := flag.Float64("test", 0.2, "test-set fraction")
	seed := flag.Int64("seed", 1, "random seed")
	logTransform := flag.Bool("log", true, "log10-transform size and response")
	quick := flag.Bool("quick", false,
		"regenerate the Performance dataset in process (no -data needed) and run a short loop")
	metrics := flag.String("metrics", "", "write obs spans/events/metrics to this JSONL file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	summary := flag.Bool("summary", false, "print the full obs metric summary after the run")
	parallel := flag.Bool("parallel", true,
		"score candidates on all cores (selection traces are identical either way; -parallel=false forces the serial scorer)")
	checkpoint := flag.String("checkpoint", "",
		"write a resumable JSON checkpoint here after every iteration (uses a loop-owned RNG seeded by -seed)")
	resume := flag.String("resume", "",
		"resume an interrupted run from this checkpoint file (other flags must match the interrupted run)")
	model := flag.String("model", "",
		"model tier: dense (exact GP, default) | sparse (inducing-point, scales past 10⁴ points) | auto (size-based)")
	flag.Parse()

	if !*parallel {
		al.SetDefaultScoreWorkers(1)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "alrun: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	var sinkFile *os.File
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alrun:", err)
			os.Exit(1)
		}
		sinkFile = f
		obs.SetSink(f)
	}

	// On SIGINT/SIGTERM, flush the metrics sink before dying; the loop
	// writes its checkpoint after every iteration, so the file named by
	// -checkpoint already holds the latest completed iteration and the
	// run can be continued with -resume.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nalrun: caught %v, flushing\n", s)
		if sinkFile != nil {
			obs.DumpMetrics()
			obs.SetSink(nil)
			sinkFile.Sync()
			sinkFile.Close()
			fmt.Fprintf(os.Stderr, "alrun: metrics flushed to %s\n", *metrics)
		}
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "alrun: continue with -resume %s\n", *checkpoint)
		}
		os.Exit(130)
	}()

	err := run(*data, *response, *strategyName, *operator, *np, *iters, *floor,
		*nInitial, *testFrac, *seed, *logTransform, *budget, *quick, *checkpoint, *resume, *model)

	if sinkFile != nil {
		obs.DumpMetrics()
		obs.SetSink(nil)
		if cerr := sinkFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		fmt.Printf("metrics: wrote %s\n", *metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "alrun:", err)
		os.Exit(1)
	}
	if *summary {
		fmt.Print(obs.Summary())
	} else {
		fmt.Println(obs.Brief())
	}
}

// loadDataset reads the CSV (or regenerates the paper's Performance
// dataset for -quick) and applies the operator/NP filters and log
// transforms.
func loadDataset(data, response, operator string, np float64, logT, quick bool, seed int64) (*dataset.Dataset, error) {
	var d *dataset.Dataset
	var err error
	if data == "" {
		if !quick {
			return nil, fmt.Errorf("-data is required (or pass -quick)")
		}
		if d, err = repro.GeneratePerformanceDataset(seed); err != nil {
			return nil, err
		}
	} else {
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if d, err = dataset.ReadCSV(f); err != nil {
			return nil, err
		}
	}
	if operator != "" {
		d = d.WhereTag(dataset.TagOperator, operator)
	}
	if np > 0 {
		d = d.WhereVar(dataset.VarNP, np)
		d = d.Project(dataset.VarSize, dataset.VarFreq)
	}
	if logT {
		if err := d.LogVar(dataset.VarSize); err != nil {
			return nil, err
		}
		if err := d.LogResp(response); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func run(data, response, strategyName, operator string, np float64, iters int,
	floor float64, nInitial int, testFrac float64, seed int64, logT bool, budget float64,
	quick bool, checkpoint, resume, model string) error {
	d, err := loadDataset(data, response, operator, np, logT, quick, seed)
	if err != nil {
		return err
	}
	if quick && iters > 15 {
		iters = 15 // keep the in-process demonstration short
	}
	fmt.Printf("dataset: %d jobs after filtering\n", d.Len())

	rng := rand.New(rand.NewSource(seed))
	part, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: nInitial, TestFrac: testFrac}, rng)
	if err != nil {
		return err
	}

	var res al.Result
	if strategyName == "emcm" {
		if checkpoint != "" || resume != "" {
			return fmt.Errorf("-checkpoint/-resume are not supported with -strategy emcm")
		}
		res, err = al.RunEMCM(d, part, al.EMCMConfig{Response: response, Iterations: iters}, rng)
	} else {
		var strategy al.Strategy
		switch strategyName {
		case "variance-reduction":
			strategy = al.VarianceReduction{}
		case "cost-efficiency":
			strategy = al.CostEfficiency{}
		case "thompson":
			strategy = al.ThompsonVariance{}
		case "random":
			strategy = al.Random{}
		default:
			return fmt.Errorf("unknown strategy %q", strategyName)
		}
		cfg := al.LoopConfig{
			Response:     response,
			Strategy:     strategy,
			Iterations:   iters,
			NoiseFloor:   floor,
			AllowRevisit: true,
			CostBudget:   budget,
			Model:        model,
		}
		if checkpoint == "" && resume == "" {
			// Historical path: partition rng continues into the loop.
			res, err = al.Run(d, part, cfg, rng)
		} else {
			// Checkpointing needs a loop-owned counting RNG so the
			// stream position can be saved; the partition above was
			// already drawn from its own rand.NewSource(seed), so the
			// interrupted and resumed processes see the same split.
			cfg.Seed = seed
			cfg.CheckpointPath = checkpoint
			if resume != "" {
				res, err = al.Resume(d, part, cfg, resume)
			} else {
				res, err = al.Run(d, part, cfg, nil)
			}
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("%-5s %-8s %-10s %-10s %-10s %-9s %-12s %-8s\n",
		"iter", "row", "sd_chosen", "amsd", "rmse", "cover95", "cum_cost", "sigma_n")
	for _, rec := range res.Records {
		fmt.Printf("%-5d %-8d %-10.4g %-10.4g %-10.4g %-9.2f %-12.5g %-8.3g\n",
			rec.Iter, rec.Row, rec.SDChosen, rec.AMSD, rec.RMSE, rec.Coverage, rec.CumCost, rec.Noise)
	}
	if res.Converged {
		fmt.Println("terminated early: AMSD converged")
	}
	if budget > 0 && len(res.Records) > 0 && res.Records[len(res.Records)-1].CumCost >= budget {
		fmt.Printf("terminated: cost budget %.4g reached\n", budget)
	}
	return nil
}
