// Command alrun executes one Active Learning realization on a dataset CSV
// (as written by algen) and prints the per-iteration monitoring record:
// selected-point SD, AMSD, test RMSE, and cumulative cost.
//
// Usage:
//
//	alrun -data performance.csv -response runtime_s -strategy cost-efficiency \
//	      -operator poisson1 -np 32 -iters 100 -floor 0.1 -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/al"
	"repro/internal/dataset"
)

func main() {
	data := flag.String("data", "", "dataset CSV (required)")
	response := flag.String("response", dataset.RespRuntime, "response column")
	strategyName := flag.String("strategy", "variance-reduction",
		"selection strategy: variance-reduction | cost-efficiency | thompson | random | emcm")
	budget := flag.Float64("budget", 0, "stop once cumulative cost reaches this (0 = unlimited)")
	operator := flag.String("operator", "poisson1", "operator tag filter (empty = all)")
	np := flag.Float64("np", 32, "NP filter (0 = all)")
	iters := flag.Int("iters", 50, "AL iterations")
	floor := flag.Float64("floor", 0.1, "noise-level lower bound σn")
	nInitial := flag.Int("initial", 1, "initial (seed) experiments")
	testFrac := flag.Float64("test", 0.2, "test-set fraction")
	seed := flag.Int64("seed", 1, "random seed")
	logTransform := flag.Bool("log", true, "log10-transform size and response")
	flag.Parse()

	if err := run(*data, *response, *strategyName, *operator, *np, *iters, *floor,
		*nInitial, *testFrac, *seed, *logTransform, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "alrun:", err)
		os.Exit(1)
	}
}

func run(data, response, strategyName, operator string, np float64, iters int,
	floor float64, nInitial int, testFrac float64, seed int64, logT bool, budget float64) error {
	if data == "" {
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(data)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f)
	if err != nil {
		return err
	}
	if operator != "" {
		d = d.WhereTag(dataset.TagOperator, operator)
	}
	if np > 0 {
		d = d.WhereVar(dataset.VarNP, np)
		d = d.Project(dataset.VarSize, dataset.VarFreq)
	}
	if logT {
		if err := d.LogVar(dataset.VarSize); err != nil {
			return err
		}
		if err := d.LogResp(response); err != nil {
			return err
		}
	}
	fmt.Printf("dataset: %d jobs after filtering\n", d.Len())

	rng := rand.New(rand.NewSource(seed))
	part, err := dataset.RandomPartition(d, dataset.PartitionConfig{NInitial: nInitial, TestFrac: testFrac}, rng)
	if err != nil {
		return err
	}

	var res al.Result
	if strategyName == "emcm" {
		res, err = al.RunEMCM(d, part, al.EMCMConfig{Response: response, Iterations: iters}, rng)
	} else {
		var strategy al.Strategy
		switch strategyName {
		case "variance-reduction":
			strategy = al.VarianceReduction{}
		case "cost-efficiency":
			strategy = al.CostEfficiency{}
		case "thompson":
			strategy = al.ThompsonVariance{}
		case "random":
			strategy = al.Random{}
		default:
			return fmt.Errorf("unknown strategy %q", strategyName)
		}
		res, err = al.Run(d, part, al.LoopConfig{
			Response:     response,
			Strategy:     strategy,
			Iterations:   iters,
			NoiseFloor:   floor,
			AllowRevisit: true,
			CostBudget:   budget,
		}, rng)
	}
	if err != nil {
		return err
	}

	fmt.Printf("%-5s %-8s %-10s %-10s %-10s %-9s %-12s %-8s\n",
		"iter", "row", "sd_chosen", "amsd", "rmse", "cover95", "cum_cost", "sigma_n")
	for _, rec := range res.Records {
		fmt.Printf("%-5d %-8d %-10.4g %-10.4g %-10.4g %-9.2f %-12.5g %-8.3g\n",
			rec.Iter, rec.Row, rec.SDChosen, rec.AMSD, rec.RMSE, rec.Coverage, rec.CumCost, rec.Noise)
	}
	if res.Converged {
		fmt.Println("terminated early: AMSD converged")
	}
	if budget > 0 && len(res.Records) > 0 && res.Records[len(res.Records)-1].CumCost >= budget {
		fmt.Printf("terminated: cost budget %.4g reached\n", budget)
	}
	return nil
}
