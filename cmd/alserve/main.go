// Command alserve hosts concurrent Active Learning campaigns over HTTP.
//
// A campaign is one al.RunOnline realization. In dataset mode the server
// measures points itself against a registered dataset generator; in
// client mode the server publishes suggestions and the client POSTs the
// measured responses, so a lab harness (or a person at a terminal) can
// be the oracle. Every model update is checkpointed to -checkpoint-dir
// as a spec-plus-journal JSON file; a killed server replays the journals
// on restart and resumes every campaign byte-identically (DESIGN.md §9).
//
// Quickstart:
//
//	alserve -addr localhost:8080 -checkpoint-dir /tmp/alserve &
//
//	# create a dataset-backed campaign on the synthetic 1-D benchmark
//	curl -s -X POST localhost:8080/campaigns -d '{
//	  "name": "demo", "source": "dataset",
//	  "dataset": {"name": "synthetic", "n": 40, "noise": 0.1},
//	  "strategy": "variance-reduction", "iterations": 10, "seed": 7}'
//
//	curl -s localhost:8080/campaigns/c0001          # status + trace
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics                  # obs JSONL snapshot
//
// Client-oracle campaigns instead poll GET /campaigns/{id}/suggest and
// answer with POST /campaigns/{id}/observe; see README.md for a full
// session. The "performance" dataset (the paper's §V-B study subset:
// operator poisson1, NP = 32, log10 size × frequency → log10 runtime)
// is registered at startup next to the built-in "synthetic" generator.
//
// SIGINT/SIGTERM drain in-flight requests, stop every campaign engine,
// flush final checkpoints, and dump obs metrics to the -metrics sink.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-campaign checkpoints (empty = no persistence)")
	cacheSize := flag.Int("cache", 4096, "prediction LRU capacity in points")
	scoreWorkers := flag.Int("score-workers", 0, "workers per scoring call (0 = all cores)")
	maxScores := flag.Int("max-scores", 0, "concurrent scoring operations across all campaigns (0 = GOMAXPROCS)")
	parallel := flag.Bool("parallel", true, "score candidates on all cores inside campaign engines")
	metrics := flag.String("metrics", "", "write obs spans/events/metrics to this JSONL file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
	flag.Parse()

	if !*parallel {
		al.SetDefaultScoreWorkers(1)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "alserve: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	var sinkFile *os.File
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alserve:", err)
			os.Exit(1)
		}
		sinkFile = f
		obs.SetSink(f)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "alserve:", err)
			os.Exit(1)
		}
	}

	serve.RegisterDataset("performance", performanceDataset)

	mgr := serve.NewManager(serve.Config{
		CheckpointDir:       *ckptDir,
		CacheSize:           *cacheSize,
		ScoreWorkers:        *scoreWorkers,
		MaxConcurrentScores: *maxScores,
	})
	if n, err := mgr.ResumeAll(); err != nil {
		fmt.Fprintln(os.Stderr, "alserve: resume:", err)
		os.Exit(1)
	} else if n > 0 {
		fmt.Printf("alserve: resumed %d campaign(s) from %s\n", n, *ckptDir)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(mgr)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("alserve: listening on http://%s (datasets: %v)\n", *addr, serve.DatasetNames())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	exit := 0
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "alserve:", err)
		exit = 1
	case s := <-sigc:
		fmt.Fprintf(os.Stderr, "alserve: caught %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "alserve: http shutdown:", err)
			exit = 1
		}
		if err := mgr.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "alserve:", err)
			exit = 1
		}
		cancel()
	}
	if sinkFile != nil {
		obs.DumpMetrics()
		obs.SetSink(nil)
		sinkFile.Sync()
		sinkFile.Close()
		fmt.Fprintf(os.Stderr, "alserve: metrics flushed to %s\n", *metrics)
	}
	os.Exit(exit)
}

// performanceDataset regenerates the paper's §V-B study subset
// (deterministic in the seed, so checkpoint resume rebuilds the exact
// same candidate grid). The spec's N and Noise fields are ignored — the
// simulated cluster fixes both.
func performanceDataset(spec serve.DatasetSpec) (*dataset.Dataset, string, error) {
	d, err := repro.GeneratePerformanceDataset(spec.Seed)
	if err != nil {
		return nil, "", err
	}
	sub, err := repro.StudySubset2D(d)
	if err != nil {
		return nil, "", err
	}
	return sub, dataset.RespRuntime, nil
}
