// Command alserve hosts concurrent Active Learning campaigns over HTTP.
//
// A campaign is one al.RunOnline realization. In dataset mode the server
// measures points itself against a registered dataset generator; in
// client mode the server publishes suggestions and the client POSTs the
// measured responses, so a lab harness (or a person at a terminal) can
// be the oracle. Every model update is checkpointed to -checkpoint-dir
// as a spec-plus-journal JSON file; a killed server replays the journals
// on restart and resumes every campaign byte-identically (DESIGN.md §9).
//
// Quickstart:
//
//	alserve -addr localhost:8080 -checkpoint-dir /tmp/alserve &
//
//	# create a dataset-backed campaign on the synthetic 1-D benchmark
//	curl -s -X POST localhost:8080/campaigns -d '{
//	  "name": "demo", "source": "dataset",
//	  "dataset": {"name": "synthetic", "n": 40, "noise": 0.1},
//	  "strategy": "variance-reduction", "iterations": 10, "seed": 7}'
//
//	curl -s localhost:8080/campaigns/c0001          # status + trace
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics                  # obs JSONL snapshot
//
// Client-oracle campaigns instead poll GET /campaigns/{id}/suggest and
// answer with POST /campaigns/{id}/observe; see README.md for a full
// session. The "performance" dataset (the paper's §V-B study subset:
// operator poisson1, NP = 32, log10 size × frequency → log10 runtime)
// is registered at startup next to the built-in "synthetic" generator.
//
// SIGINT/SIGTERM drain in-flight requests, stop every campaign engine,
// flush final checkpoints, and dump obs metrics to the -metrics sink.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/ring"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	replicas := flag.Int("replicas", 1, "cluster mode: boot this many replica nodes behind a consistent-hash router on -addr (1 = classic single node)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-campaign checkpoints (empty = no persistence; cluster mode uses one subdirectory per replica)")
	replication := flag.Int("replication", 2, "cluster mode: journal copies per campaign, owner included (clamped to -replicas)")
	autofailover := flag.Bool("autofailover", false, "cluster mode: heartbeat every node and fail over / fence / rejoin autonomously")
	heartbeatInterval := flag.Duration("heartbeat-interval", 500*time.Millisecond, "cluster mode: failure-detector heartbeat period (with -autofailover)")
	cacheSize := flag.Int("cache", 4096, "prediction LRU capacity in points")
	scoreWorkers := flag.Int("score-workers", 0, "workers per scoring call (0 = all cores)")
	maxScores := flag.Int("max-scores", 0, "concurrent scoring operations across all campaigns (0 = GOMAXPROCS)")
	parallel := flag.Bool("parallel", true, "score candidates on all cores inside campaign engines")
	metrics := flag.String("metrics", "", "write obs spans/events/metrics to this JSONL file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain deadline on SIGINT/SIGTERM")

	// Resilience knobs (DESIGN.md §10).
	routeTimeout := flag.Duration("route-timeout", 30*time.Second, "per-request context deadline")
	maxBody := flag.Int64("max-body-bytes", 1<<20, "request body cap (HTTP 413 beyond it)")
	maxInFlight := flag.Int("max-inflight", 0, "admission bound on concurrently handled requests (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission wait-queue length before shedding with 429 (0 = 2x max-inflight)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (Slowloris guard)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	maxHeaderBytes := flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "circuit breaker open-state cooldown before probing")

	// Drive (client) mode: act as the measurement client of a running
	// server, through the retrying resilience transport.
	driveURL := flag.String("drive", "", "client mode: drive a campaign against this server URL instead of serving")
	driveSpec := flag.String("drive-spec", "", "client mode: JSON CampaignSpec file (default: built-in demo campaign)")
	driveAttempts := flag.Int("drive-attempts", 6, "client mode: retry budget per request")
	driveBackoffBase := flag.Duration("drive-backoff-base", 100*time.Millisecond, "client mode: first retry backoff ceiling")
	driveBackoffCap := flag.Duration("drive-backoff-cap", 5*time.Second, "client mode: retry backoff cap")
	driveSeed := flag.Int64("drive-seed", 1, "client mode: campaign + jitter seed")

	// Chaos knobs — deterministic fault injection for drills and the
	// chaos suite; all default off.
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for all chaos fault decisions")
	chaosTornRate := flag.Float64("chaos-torn-write-rate", 0, "probability a journal append is torn mid-write")
	chaosLatencyRate := flag.Float64("chaos-latency-rate", 0, "probability of an injected latency spike per connection op")
	chaosLatency := flag.Duration("chaos-latency", 10*time.Millisecond, "maximum injected latency spike")
	chaosResetRate := flag.Float64("chaos-reset-rate", 0, "probability a connection op is reset")
	chaosPartialRate := flag.Float64("chaos-partial-write-rate", 0, "probability a connection write is delivered partially then reset")
	flag.Parse()

	if *driveURL != "" {
		err := runClient(clientConfig{
			baseURL:  *driveURL,
			specPath: *driveSpec,
			attempts: *driveAttempts,
			base:     *driveBackoffBase,
			cap:      *driveBackoffCap,
			seed:     *driveSeed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "alserve:", err)
			os.Exit(1)
		}
		return
	}

	if !*parallel {
		al.SetDefaultScoreWorkers(1)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "alserve: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	var sinkFile *os.File
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alserve:", err)
			os.Exit(1)
		}
		sinkFile = f
		obs.SetSink(f)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "alserve:", err)
			os.Exit(1)
		}
	}

	serve.RegisterDataset("performance", performanceDataset)

	if *replicas > 1 {
		exit := runCluster(clusterFlags{
			addr:     *addr,
			replicas: *replicas,
			ckptDir:  *ckptDir,
			serveCfg: serve.Config{
				CacheSize:           *cacheSize,
				ScoreWorkers:        *scoreWorkers,
				MaxConcurrentScores: *maxScores,
				ScoreBreaker:        resilience.BreakerConfig{Cooldown: *breakerCooldown},
				JournalBreaker:      resilience.BreakerConfig{Cooldown: *breakerCooldown},
				TornWrites:          faults.TornWriteConfig{Seed: *chaosSeed, Rate: *chaosTornRate},
			},
			serverCfg: serve.ServerConfig{
				RouteTimeout: *routeTimeout,
				MaxBodyBytes: *maxBody,
				Admission: resilience.AdmissionConfig{
					MaxInFlight: *maxInFlight,
					MaxQueue:    *maxQueue,
				},
			},
			breakerCooldown:   *breakerCooldown,
			replication:       *replication,
			autofailover:      *autofailover,
			heartbeatInterval: *heartbeatInterval,
		})
		if sinkFile != nil {
			obs.DumpMetrics()
			obs.SetSink(nil)
			sinkFile.Sync()
			sinkFile.Close()
			fmt.Fprintf(os.Stderr, "alserve: metrics flushed to %s\n", *metrics)
		}
		os.Exit(exit)
	}

	mgr := serve.NewManager(serve.Config{
		CheckpointDir:       *ckptDir,
		CacheSize:           *cacheSize,
		ScoreWorkers:        *scoreWorkers,
		MaxConcurrentScores: *maxScores,
		ScoreBreaker:        resilience.BreakerConfig{Cooldown: *breakerCooldown},
		JournalBreaker:      resilience.BreakerConfig{Cooldown: *breakerCooldown},
		TornWrites:          faults.TornWriteConfig{Seed: *chaosSeed, Rate: *chaosTornRate},
	})
	if n, err := mgr.ResumeAll(); err != nil {
		fmt.Fprintln(os.Stderr, "alserve: resume:", err)
		os.Exit(1)
	} else if n > 0 {
		fmt.Printf("alserve: resumed %d campaign(s) from %s\n", n, *ckptDir)
	}

	handler := serve.NewServerWith(mgr, serve.ServerConfig{
		RouteTimeout: *routeTimeout,
		MaxBodyBytes: *maxBody,
		Admission: resilience.AdmissionConfig{
			MaxInFlight: *maxInFlight,
			MaxQueue:    *maxQueue,
		},
	})
	// Full server-side timeout set: a stalled or malicious peer cannot
	// hold a connection (and its goroutine) open indefinitely.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alserve:", err)
		os.Exit(1)
	}
	if *chaosLatencyRate > 0 || *chaosResetRate > 0 || *chaosPartialRate > 0 {
		ln = faults.WrapListener(ln, faults.NewNet(faults.NetworkConfig{
			Seed:             *chaosSeed,
			LatencyRate:      *chaosLatencyRate,
			Latency:          *chaosLatency,
			ResetRate:        *chaosResetRate,
			PartialWriteRate: *chaosPartialRate,
		}))
		fmt.Fprintln(os.Stderr, "alserve: CHAOS listener active (latency/reset/partial-write injection)")
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("alserve: listening on http://%s (datasets: %v)\n", *addr, serve.DatasetNames())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	exit := 0
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "alserve:", err)
		exit = 1
	case s := <-sigc:
		fmt.Fprintf(os.Stderr, "alserve: caught %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "alserve: http shutdown:", err)
			exit = 1
		}
		if err := mgr.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "alserve:", err)
			exit = 1
		}
		cancel()
	}
	if sinkFile != nil {
		obs.DumpMetrics()
		obs.SetSink(nil)
		sinkFile.Sync()
		sinkFile.Close()
		fmt.Fprintf(os.Stderr, "alserve: metrics flushed to %s\n", *metrics)
	}
	os.Exit(exit)
}

// clusterFlags carries the parsed flags into cluster mode.
type clusterFlags struct {
	addr              string
	replicas          int
	replication       int
	autofailover      bool
	heartbeatInterval time.Duration
	ckptDir           string
	serveCfg          serve.Config
	serverCfg         serve.ServerConfig
	breakerCooldown   time.Duration
}

// runCluster boots an in-process replica fleet behind the
// consistent-hash router (internal/ring) and serves it on -addr until
// SIGINT/SIGTERM. Each replica journals under its own
// -checkpoint-dir subdirectory and ships every record to its
// -replication-1 followers, so killing any single node loses no
// acknowledged observation. With -autofailover the router also
// heartbeats every node and recovers from failures on its own:
// condemned nodes are failed over and fenced, healed ones rejoin at a
// new epoch.
func runCluster(cf clusterFlags) int {
	// Mirror StartCluster's clamps so the banner reports what actually runs.
	if cf.replication < 2 {
		cf.replication = 2
	}
	if cf.replication > cf.replicas {
		cf.replication = cf.replicas
	}
	var det *ring.DetectorConfig
	if cf.autofailover {
		det = &ring.DetectorConfig{Interval: cf.heartbeatInterval}
	}
	cl, err := ring.StartCluster(ring.ClusterConfig{
		Replicas:    cf.replicas,
		Replication: cf.replication,
		Detector:    det,
		RouterAddr:  cf.addr,
		Dir:         cf.ckptDir,
		Serve:       cf.serveCfg,
		Server:      cf.serverCfg,
		Router: ring.RouterConfig{
			Breaker: resilience.BreakerConfig{Cooldown: cf.breakerCooldown},
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "alserve: cluster:", err)
		return 1
	}
	mode := "operator-driven failover"
	if cf.autofailover {
		mode = fmt.Sprintf("autonomous failover, heartbeat %v", cf.heartbeatInterval)
	}
	fmt.Printf("alserve: %d-replica cluster behind %s, replication %d, %s (datasets: %v)\n",
		cf.replicas, cl.URL(), cf.replication, mode, serve.DatasetNames())
	for _, id := range cl.NodeIDs() {
		fmt.Printf("alserve:   node %s at %s\n", id, cl.NodeURL(id))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	s := <-sigc
	fmt.Fprintf(os.Stderr, "alserve: caught %v, draining cluster\n", s)
	if err := cl.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "alserve: cluster shutdown:", err)
		return 1
	}
	return 0
}

// performanceDataset regenerates the paper's §V-B study subset
// (deterministic in the seed, so checkpoint resume rebuilds the exact
// same candidate grid). The spec's N and Noise fields are ignored — the
// simulated cluster fixes both.
func performanceDataset(spec serve.DatasetSpec) (*dataset.Dataset, string, error) {
	d, err := repro.GeneratePerformanceDataset(spec.Seed)
	if err != nil {
		return nil, "", err
	}
	sub, err := repro.StudySubset2D(d)
	if err != nil {
		return nil, "", err
	}
	return sub, dataset.RespRuntime, nil
}
