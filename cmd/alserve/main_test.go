package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/al"
	"repro/internal/mat"
	"repro/internal/serve"
)

// crashGrid and crashOracle define the deterministic client-mode
// campaign the crash test drives (mirroring the serve package's trace
// tests).
func crashGrid() [][]float64 {
	out := make([][]float64, 12)
	for i := range out {
		out[i] = []float64{3 * float64(i) / 11}
	}
	return out
}

func crashOracle(x []float64) (y, cost float64) {
	y = math.Sin(2*x[0]) + 0.5*x[0]
	return y, 1 + x[0]
}

func crashSpec() serve.CampaignSpec {
	return serve.CampaignSpec{
		Name:       "crash",
		Source:     "client",
		Candidates: crashGrid(),
		Seeds:      []int{0, 11},
		Strategy:   "variance-reduction",
		Iterations: 5,
		Restarts:   1,
		Seed:       17,
	}
}

type testServer struct {
	cmd  *exec.Cmd
	base string
}

func buildAlserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "alserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func startAlserve(t *testing.T, bin, addr, ckptDir string) *testServer {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-checkpoint-dir", ckptDir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start alserve: %v", err)
	}
	s := &testServer{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(s.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return s
			}
		}
		if time.Now().After(deadline) {
			s.kill(t)
			t.Fatalf("alserve on %s never became healthy: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill delivers SIGKILL — no graceful shutdown, no final flush; only
// what the server checkpointed before the signal survives.
func (s *testServer) kill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	s.cmd.Wait()
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func httpJSON(method, url string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s: %w (%s)", url, err, data)
		}
	}
	return resp.StatusCode, nil
}

func isTerminal(state string) bool {
	switch state {
	case serve.StateDone, serve.StateFailed, serve.StateStopped:
		return true
	}
	return false
}

// drive answers suggestions until the campaign is terminal or maxObs
// observations have been accepted.
func drive(t *testing.T, base, id string, maxObs int) [][]float64 {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var xs [][]float64
	for {
		if time.Now().After(deadline) {
			t.Fatalf("drive timeout after %d observations", len(xs))
		}
		var sug serve.Suggestion
		code, err := httpJSON("GET", base+"/campaigns/"+id+"/suggest", nil, &sug)
		if err != nil {
			t.Fatalf("suggest: %v", err)
		}
		if code == http.StatusConflict {
			var st serve.CampaignStatus
			if _, err := httpJSON("GET", base+"/campaigns/"+id, nil, &st); err != nil {
				t.Fatalf("status: %v", err)
			}
			if isTerminal(st.State) {
				return xs
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			t.Fatalf("suggest: HTTP %d", code)
		}
		y, cost := crashOracle(sug.X)
		req := serve.ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
		if code, err := httpJSON("POST", base+"/campaigns/"+id+"/observe", req, nil); err != nil || code != http.StatusOK {
			t.Fatalf("observe seq %d: HTTP %d err %v", sug.Seq, code, err)
		}
		xs = append(xs, sug.X)
		if maxObs > 0 && len(xs) >= maxObs {
			return xs
		}
	}
}

func waitDone(t *testing.T, base, id string) serve.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st serve.CampaignStatus
		if code, err := httpJSON("GET", base+"/campaigns/"+id, nil, &st); err != nil || code != http.StatusOK {
			t.Fatalf("status: HTTP %d err %v", code, err)
		}
		if isTerminal(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAlserveCrashResume is the end-to-end durability test: a client
// campaign is driven partway over HTTP, the server process is SIGKILLed
// (no graceful shutdown), a fresh process is started on the same
// checkpoint directory, and the campaign must resume and finish with a
// suggestion stream and record trace byte-identical to an in-process
// al.RunOnline of the same spec. CI runs it in the chaos-smoke lane.
func TestAlserveCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-resume integration test skipped in -short mode")
	}

	spec := crashSpec()

	// Reference trace, straight through the AL engine.
	oracle := al.OracleFunc(func(x []float64) (float64, float64, error) {
		y, c := crashOracle(x)
		return y, c, nil
	})
	cfg := al.LoopConfig{
		Response:     "y",
		Strategy:     al.VarianceReduction{},
		Iterations:   spec.Iterations,
		Restarts:     spec.Restarts,
		AllowRevisit: true,
		Seed:         spec.Seed,
	}
	ref, err := al.RunOnline(mat.NewFromRows(spec.Candidates), spec.Seeds, oracle, cfg, rand.New(rand.NewSource(spec.Seed)))
	if err != nil {
		t.Fatalf("reference RunOnline: %v", err)
	}
	wantRows := append(append([]int(nil), spec.Seeds...), ref.TrainRows...)

	bin := buildAlserve(t)
	ckptDir := t.TempDir()
	addr := freeAddr(t)

	// Lifetime 1: create the campaign, observe 3 points, SIGKILL.
	srv1 := startAlserve(t, bin, addr, ckptDir)
	var created serve.CampaignStatus
	if code, err := httpJSON("POST", srv1.base+"/campaigns", spec, &created); err != nil || code != http.StatusCreated {
		srv1.kill(t)
		t.Fatalf("create: HTTP %d err %v", code, err)
	}
	xs := drive(t, srv1.base, created.ID, 3)
	srv1.kill(t)

	// Lifetime 2: same checkpoint dir, fresh process. The campaign must
	// come back (same id) and continue exactly where the journal ends.
	srv2 := startAlserve(t, bin, addr, ckptDir)
	defer srv2.kill(t)
	xs = append(xs, drive(t, srv2.base, created.ID, 0)...)
	final := waitDone(t, srv2.base, created.ID)
	if final.State != serve.StateDone {
		t.Fatalf("resumed campaign ended %s (err %q), want done", final.State, final.Error)
	}

	// Byte-identical suggestion stream across the kill.
	if len(xs) != len(wantRows) {
		t.Fatalf("measured %d points across both lifetimes, reference measured %d", len(xs), len(wantRows))
	}
	grid := crashGrid()
	for i, x := range xs {
		want := grid[wantRows[i]]
		if math.Float64bits(x[0]) != math.Float64bits(want[0]) {
			t.Fatalf("suggestion %d: got x=%v, want row %d x=%v", i, x, wantRows[i], want)
		}
	}

	// Byte-identical record trace (via the JSON wire format, which
	// round-trips float64 exactly).
	if len(final.Records) != len(ref.Records) {
		t.Fatalf("final status has %d records, reference has %d", len(final.Records), len(ref.Records))
	}
	for i, r := range ref.Records {
		want := al.ToJSONRecord(r)
		got := final.Records[i]
		if !sameJSONRecord(got, want) {
			t.Fatalf("record %d differs after crash-resume:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestAlserveDriveMode runs the binary's client mode end-to-end: one
// process serves (with admission control and server timeouts on), a
// second process drives the built-in demo campaign to completion
// through the retrying resilience transport with idempotency keys.
func TestAlserveDriveMode(t *testing.T) {
	if testing.Short() {
		t.Skip("drive-mode integration test skipped in -short mode")
	}
	bin := buildAlserve(t)
	addr := freeAddr(t)

	cmd := exec.Command(bin, "-addr", addr, "-checkpoint-dir", t.TempDir(),
		"-max-inflight", "8", "-route-timeout", "20s")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start alserve: %v", err)
	}
	srv := &testServer{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(srv.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			srv.kill(t)
			t.Fatalf("alserve never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer srv.kill(t)

	drive := exec.Command(bin, "-drive", srv.base, "-drive-seed", "5")
	out, err := drive.CombinedOutput()
	if err != nil {
		t.Fatalf("drive mode: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("finished done")) {
		t.Fatalf("drive mode did not finish the campaign:\n%s", out)
	}
}

// sameJSONRecord compares records bit-exactly, treating NaN == NaN
// (RunOnline records carry NaN RMSE — there is no held-out test set).
func sameJSONRecord(a, b al.JSONRecord) bool {
	bits := func(f al.JSONFloat) uint64 { return math.Float64bits(float64(f)) }
	return a.Iter == b.Iter && a.Row == b.Row && a.Train == b.Train &&
		bits(a.SDChosen) == bits(b.SDChosen) && bits(a.AMSD) == bits(b.AMSD) &&
		bits(a.RMSE) == bits(b.RMSE) && bits(a.Coverage) == bits(b.Coverage) &&
		bits(a.CumCost) == bits(b.CumCost) && bits(a.LML) == bits(b.LML) &&
		bits(a.Noise) == bits(b.Noise)
}
