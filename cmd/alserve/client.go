package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"time"

	"repro/internal/al"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// clientConfig parameterizes drive mode (alserve -drive URL): the
// process acts as a measurement client against a running server,
// exercising the full resilience path — retrying transport, capped
// backoff with jitter, Retry-After honoring, and idempotency keys on
// every observation.
type clientConfig struct {
	baseURL  string
	specPath string // "" = built-in demo spec
	attempts int
	base     time.Duration
	cap      time.Duration
	seed     int64
}

// demoSpec is the built-in client-sourced campaign drive mode runs when
// no -drive-spec file is given: a 1-D grid measured by demoOracle.
func demoSpec(seed int64) serve.CampaignSpec {
	grid := make([][]float64, 12)
	for i := range grid {
		grid[i] = []float64{3 * float64(i) / 11}
	}
	return serve.CampaignSpec{
		Name:       "drive",
		Source:     "client",
		Candidates: grid,
		Seeds:      []int{0, 11},
		Strategy:   "variance-reduction",
		Iterations: 5,
		Restarts:   1,
		Seed:       seed,
	}
}

// demoOracle is the deterministic measurement answering suggestions in
// drive mode.
func demoOracle(x []float64) (y, cost float64) {
	return math.Sin(2*x[0]) + 0.5*x[0], 1 + x[0]
}

// runClient drives one campaign to a terminal state and reports it.
// Every request goes through the retrying resilience transport, and
// observations carry Idempotency-Key headers, so the loop survives
// connection resets, load shedding, and lost responses without ever
// double-feeding the campaign.
func runClient(cfg clientConfig) error {
	client := resilience.NewClient(nil, resilience.TransportConfig{
		MaxAttempts: cfg.attempts,
		Seed:        cfg.seed,
		Backoff:     resilience.Backoff{Base: cfg.base, Cap: cfg.cap},
	})

	spec := demoSpec(cfg.seed)
	if cfg.specPath != "" {
		data, err := os.ReadFile(cfg.specPath)
		if err != nil {
			return fmt.Errorf("drive: read spec: %w", err)
		}
		spec = serve.CampaignSpec{}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("drive: parse spec: %w", err)
		}
	}

	var created serve.CampaignStatus
	if err := postJSON(client, cfg.baseURL+"/campaigns", "create-"+time.Now().UTC().Format(time.RFC3339Nano), spec, &created); err != nil {
		return fmt.Errorf("drive: create campaign: %w", err)
	}
	fmt.Printf("drive: campaign %s created on %s\n", created.ID, cfg.baseURL)

	observed := 0
	for {
		var sug serve.Suggestion
		code, err := getJSON(client, cfg.baseURL+"/campaigns/"+created.ID+"/suggest", &sug)
		switch {
		case err != nil:
			return fmt.Errorf("drive: suggest: %w", err)
		case code == http.StatusConflict:
			// No pending suggestion: the engine is fitting, replaying,
			// or done — poll status to find out which.
			var st serve.CampaignStatus
			if _, err := getJSON(client, cfg.baseURL+"/campaigns/"+created.ID, &st); err != nil {
				return fmt.Errorf("drive: status: %w", err)
			}
			switch st.State {
			case serve.StateDone, serve.StateFailed, serve.StateStopped:
				fmt.Printf("drive: campaign %s finished %s after %d observations (converged=%v)\n",
					created.ID, st.State, st.Observations, st.Converged)
				if st.State == serve.StateFailed {
					return fmt.Errorf("drive: campaign failed: %s", st.Error)
				}
				return nil
			}
			time.Sleep(50 * time.Millisecond)
			continue
		case code != http.StatusOK:
			return fmt.Errorf("drive: suggest returned HTTP %d", code)
		}

		y, cost := demoOracle(sug.X)
		req := serve.ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)}
		// The idempotency key makes the retrying transport safe for this
		// non-idempotent POST: a retry after a lost response dedups
		// server-side instead of colliding with the next suggestion.
		key := fmt.Sprintf("%s-seq%d", created.ID, sug.Seq)
		var ack map[string]any
		if err := postJSON(client, cfg.baseURL+"/campaigns/"+created.ID+"/observe", key, req, &ack); err != nil {
			return fmt.Errorf("drive: observe seq %d: %w", sug.Seq, err)
		}
		observed++
	}
}

// postJSON POSTs v with an idempotency key and decodes the response
// into out. Non-2xx responses that survive the transport's retry budget
// are returned as errors with the server's error envelope.
func postJSON(client *http.Client, url, key string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(resilience.IdempotencyHeader, key)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// getJSON GETs url and decodes 200 responses into out; the status code
// is returned so callers can branch on expected non-200s (409 from
// /suggest between suggestions).
func getJSON(client *http.Client, url string, out any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.Unmarshal(data, out)
}
