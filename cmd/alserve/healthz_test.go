package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// healthzBody is the documented /healthz shape (DESIGN.md §10,
// OBSERVABILITY.md): liveness plus the resilience picture.
type healthzBody struct {
	Status         string            `json:"status"`
	Campaigns      int               `json:"campaigns"`
	Terminal       int               `json:"terminal"`
	AdmissionDepth int               `json:"admission_depth"`
	Breakers       map[string]string `json:"breakers"`
}

func getHealthz(base string) (int, healthzBody, error) {
	var body healthzBody
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, body, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body, err
}

// TestHealthzDegradedUnderSaturation pins the documented degraded-state
// contract: when the admission queue rides above its high watermark,
// /healthz must stay HTTP 200 (the process IS alive — degradation is
// not an error code), flip status to "degraded", report a positive
// admission_depth, and keep listing both breakers. Once load stops the
// status must recover to "ok". The endpoint itself bypasses admission,
// so it stays readable while every other route queues or sheds.
func TestHealthzDegradedUnderSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation integration test skipped in -short mode")
	}
	bin := buildAlserve(t)
	addr := freeAddr(t)

	// One in-flight slot and a short queue: high watermark is 1+8/2 = 5,
	// low watermark 0, so a dozen concurrent predict calls pin the queue
	// at its ceiling (depth 9) and the flag latches until full drain.
	cmd := exec.Command(bin, "-addr", addr, "-checkpoint-dir", t.TempDir(),
		"-max-inflight", "1", "-max-queue", "8")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start alserve: %v", err)
	}
	srv := &testServer{cmd: cmd, base: "http://" + addr}
	defer srv.kill(t)

	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body, err := getHealthz(srv.base)
		if err == nil && code == http.StatusOK && body.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alserve never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A finished dataset campaign gives the hammers a model to predict
	// against — real GP work that holds the admission slot, unlike a
	// fast list handler the queue never sees.
	var created serve.CampaignStatus
	spec := serve.CampaignSpec{
		Name:    "saturation",
		Source:  "dataset",
		Dataset: &serve.DatasetSpec{Name: "synthetic", Seed: 11, N: 40, Noise: 0.05},
		Seeds:   []int{0, 39}, Strategy: "variance-reduction",
		Iterations: 10, Restarts: 1, Seed: 5,
	}
	if code, err := httpJSON("POST", srv.base+"/campaigns", spec, &created); err != nil || code != http.StatusCreated {
		t.Fatalf("create: HTTP %d err %v", code, err)
	}
	waitDone(t, srv.base, created.ID)

	// Hammer predict with per-request unique batches (repeating points
	// would be served from the LRU cache and never touch the model).
	ctx, stopHammers := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			url := srv.base + "/campaigns/" + created.ID + "/predict"
			for n := 0; ctx.Err() == nil; n++ {
				points := make([][]float64, 64)
				for j := range points {
					points[j] = []float64{float64(worker) + float64(n*64+j)*1e-6}
				}
				body, _ := json.Marshal(serve.PredictRequest{Points: points})
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(i)
	}
	defer func() {
		stopHammers()
		wg.Wait()
	}()

	// Under sustained saturation /healthz must report degraded — with
	// the full documented body — while still answering 200.
	var degraded healthzBody
	deadline = time.Now().Add(20 * time.Second)
	for {
		code, body, err := getHealthz(srv.base)
		if err != nil {
			t.Fatalf("healthz under load: %v", err)
		}
		if code != http.StatusOK {
			t.Fatalf("healthz under load returned HTTP %d, want 200 (degradation is not an error code)", code)
		}
		if body.Status == "degraded" {
			degraded = body
			break
		}
		if body.Status != "ok" {
			t.Fatalf("healthz status %q, want ok or degraded", body.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported degraded under saturation (last depth %d)", body.AdmissionDepth)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if degraded.AdmissionDepth <= 0 {
		t.Errorf("degraded healthz reports admission_depth %d, want > 0", degraded.AdmissionDepth)
	}
	if degraded.Campaigns < 1 || degraded.Terminal < 1 {
		t.Errorf("degraded healthz reports campaigns=%d terminal=%d, want ≥ 1 each",
			degraded.Campaigns, degraded.Terminal)
	}
	for _, name := range []string{"score", "journal"} {
		if _, ok := degraded.Breakers[name]; !ok {
			t.Errorf("degraded healthz body is missing breaker %q: %v", name, degraded.Breakers)
		}
	}

	// Stop the load; the hysteresis must recover to "ok" once the queue
	// drains to the low watermark.
	stopHammers()
	wg.Wait()
	deadline = time.Now().Add(15 * time.Second)
	for {
		code, body, err := getHealthz(srv.base)
		if err != nil {
			t.Fatalf("healthz after load: %v", err)
		}
		if code == http.StatusOK && body.Status == "ok" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stuck %q (depth %d) after load stopped", body.Status, body.AdmissionDepth)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
