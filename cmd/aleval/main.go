// Command aleval runs the OpenAL-style comparative evaluation harness:
// a strategy × dataset × noise grid of Active Learning campaigns,
// executed end to end through a live alserve instance, ranked into a
// deterministic comparative report (STRATEGIES.md documents every
// strategy; DESIGN.md §11 describes the harness).
//
// Quickstart — no server needed, one is started in-process:
//
//	aleval -quick
//
// Against a running service, with an explicit grid:
//
//	alserve -addr localhost:8080 &
//	aleval -server http://localhost:8080 \
//	       -strategies random,variance-reduction,qbc:k=4,diversity \
//	       -datasets synthetic-1d,performance-1d -noise none,gauss:0.05 \
//	       -iterations 10 -seed 3 -out report.txt
//
// Strategy entries are registry names with optional colon-separated
// parameters: qbc:k=4:perturb=0.3, cost-exponent:gamma=0.5,
// eps-greedy:epsilon=0.1, diversity:lambda=2.
//
// Two invocations with identical flags emit byte-identical reports —
// the CI eval-smoke step diffs them. -check-catalog verifies that every
// registered strategy has a "### `name`" section in STRATEGIES.md and
// fails CI when the catalog falls behind the registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/al"
	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aleval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server     = fs.String("server", "", "base URL of a running alserve (empty: start one in-process)")
		strategies = fs.String("strategies", "", "comma-separated strategy specs, name[:key=val]... (empty: default grid)")
		datasets   = fs.String("datasets", "", "comma-separated eval datasets (empty: all)")
		noise      = fs.String("noise", "none", "comma-separated noise models: none, gauss, gauss:<sd>")
		iterations = fs.Int("iterations", 0, "AL steps per campaign (0: default)")
		seed       = fs.Int64("seed", 1, "grid seed; equal seeds give byte-identical reports")
		target     = fs.Float64("target", 0, "target RMSE for cost-to-target (0: per-dataset default)")
		quick      = fs.Bool("quick", false, "small pools and budgets (CI smoke mode)")
		out        = fs.String("out", "", "write the report to this file instead of stdout")
		list       = fs.Bool("list", false, "list registered strategies and eval datasets, then exit")
		catalog    = fs.String("check-catalog", "", "verify every registered strategy is documented in this STRATEGIES.md, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "strategies:")
		for _, name := range al.StrategyNames() {
			fmt.Fprintf(stdout, "  %s\n", name)
		}
		fmt.Fprintln(stdout, "datasets:")
		for _, name := range experiments.EvalDatasetNames() {
			fmt.Fprintf(stdout, "  %s\n", name)
		}
		return 0
	}

	if *catalog != "" {
		missing, err := checkCatalog(*catalog)
		if err != nil {
			fmt.Fprintf(stderr, "aleval: %v\n", err)
			return 1
		}
		if len(missing) > 0 {
			fmt.Fprintf(stderr, "aleval: %s is missing catalog sections for: %s\n",
				*catalog, strings.Join(missing, ", "))
			return 1
		}
		fmt.Fprintf(stdout, "catalog ok: %d strategies documented\n", len(al.StrategyNames()))
		return 0
	}

	strats, err := parseStrategies(*strategies)
	if err != nil {
		fmt.Fprintf(stderr, "aleval: %v\n", err)
		return 2
	}
	grid := experiments.EvalGrid{
		Server:      *server,
		Strategies:  strats,
		Datasets:    splitList(*datasets),
		NoiseModels: splitList(*noise),
		Iterations:  *iterations,
		Seed:        *seed,
		TargetRMSE:  *target,
		Quick:       *quick,
	}

	ctx := context.Background()
	if grid.Server == "" {
		url, shutdown, err := startLocalServer()
		if err != nil {
			fmt.Fprintf(stderr, "aleval: start in-process server: %v\n", err)
			return 1
		}
		defer shutdown()
		grid.Server = url
	}

	res, err := experiments.RunEval(ctx, grid)
	if err != nil {
		fmt.Fprintf(stderr, "aleval: %v\n", err)
		return 1
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "aleval: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if _, err := res.WriteReport(w); err != nil {
		fmt.Fprintf(stderr, "aleval: write report: %v\n", err)
		return 1
	}
	return 0
}

// startLocalServer boots an ephemeral in-process alserve on a loopback
// port — the zero-setup path for `aleval -quick`.
func startLocalServer() (url string, shutdown func(), err error) {
	mgr := serve.NewManager(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: serve.NewServer(mgr)}
	go func() { _ = srv.Serve(ln) }()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = mgr.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// splitList parses a comma-separated flag into trimmed entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseStrategies parses the -strategies flag: comma-separated entries
// of name[:key=val]..., where keys are gamma, epsilon, k, lambda and
// perturb. Every entry is resolved against the registry immediately so
// typos fail before any campaign starts.
func parseStrategies(s string) ([]experiments.EvalStrategy, error) {
	var out []experiments.EvalStrategy
	for _, entry := range splitList(s) {
		parts := strings.Split(entry, ":")
		es := experiments.EvalStrategy{Name: parts[0]}
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("strategy %q: parameter %q is not key=val", entry, kv)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("strategy %q: parameter %s: %v", entry, key, err)
			}
			switch key {
			case "gamma":
				es.Gamma = f
			case "epsilon", "eps":
				es.Epsilon = f
			case "k":
				es.K = int(f)
			case "lambda":
				es.Lambda = f
			case "perturb":
				es.Perturb = f
			default:
				return nil, fmt.Errorf("strategy %q: unknown parameter %q (want gamma, epsilon, k, lambda, perturb)", entry, key)
			}
		}
		if _, err := al.NewStrategy(es.Name, al.StrategyParams{
			Gamma: es.Gamma, Epsilon: es.Epsilon, K: es.K, Lambda: es.Lambda, Perturb: es.Perturb,
		}); err != nil {
			return nil, err
		}
		out = append(out, es)
	}
	return out, nil
}

// checkCatalog reports registered strategies that have no
// "### `name`" section in the catalog file.
func checkCatalog(path string) ([]string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(buf)
	var missing []string
	for _, name := range al.StrategyNames() {
		if !strings.Contains(text, "### `"+name+"`") {
			missing = append(missing, name)
		}
	}
	return missing, nil
}
