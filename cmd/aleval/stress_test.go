package main

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// campaignGoroutines snapshots all goroutine stacks and returns those
// still inside campaign actors or engines — the two long-lived
// goroutines each campaign owns. After every in-process server has shut
// down, none may survive.
func campaignGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "serve.(*Campaign).actor") ||
			strings.Contains(g, "serve.(*Campaign).engine") {
			out = append(out, g)
		}
	}
	return out
}

// TestQuickConcurrentServers runs two full `aleval -quick` evaluations
// at once, each against its own in-process server sharing one process —
// the shape a parallel CI matrix produces. Both must succeed, both must
// emit the same byte-identical report their shared seed promises (the
// runs may not bleed state into each other through process-global
// registries or metrics), and no campaign goroutine may outlive the
// servers' shutdown.
func TestQuickConcurrentServers(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent end-to-end eval skipped in -short mode")
	}
	if stacks := campaignGoroutines(); len(stacks) > 0 {
		t.Skipf("campaign goroutines already running before the test: %d", len(stacks))
	}

	args := []string{
		"-quick",
		"-strategies", "random,cost-efficiency",
		"-datasets", "synthetic-1d",
		"-seed", "19",
	}

	const runs = 2
	var (
		wg      sync.WaitGroup
		reports [runs]string
		errs    [runs]error
	)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != 0 {
				errs[i] = fmt.Errorf("run %d exited %d: %s", i, code, errb.String())
				return
			}
			reports[i] = out.String()
		}(i)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if reports[0] != reports[1] {
		t.Errorf("concurrent identical invocations diverged:\n-- first --\n%s\n-- second --\n%s",
			reports[0], reports[1])
	}
	if !strings.Contains(reports[0], "cost-efficiency") {
		t.Errorf("report missing strategy row:\n%s", reports[0])
	}

	// Actor exits are asynchronous (shutdown returns before mailboxes
	// drain), so poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stacks := campaignGoroutines()
		if len(stacks) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d campaign goroutine(s) leaked past shutdown:\n%s",
				len(stacks), strings.Join(stacks, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
