package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/al"
)

func TestParseStrategies(t *testing.T) {
	strats, err := parseStrategies("random, qbc:k=3:gamma=1, diversity:lambda=2, eps-greedy:eps=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(strats) != 4 {
		t.Fatalf("got %d strategies, want 4", len(strats))
	}
	if strats[1].Name != "qbc" || strats[1].K != 3 || strats[1].Gamma != 1 {
		t.Errorf("qbc entry misparsed: %+v", strats[1])
	}
	if strats[2].Lambda != 2 {
		t.Errorf("diversity lambda misparsed: %+v", strats[2])
	}
	if strats[3].Epsilon != 0.1 {
		t.Errorf("eps-greedy epsilon misparsed: %+v", strats[3])
	}

	for _, bad := range []string{
		"no-such-strategy",
		"qbc:k",
		"qbc:k=x",
		"qbc:knobs=3",
	} {
		if _, err := parseStrategies(bad); err == nil {
			t.Errorf("parseStrategies(%q) = nil error, want failure", bad)
		}
	}
}

func TestCheckCatalog(t *testing.T) {
	dir := t.TempDir()

	full := filepath.Join(dir, "full.md")
	var sb strings.Builder
	for _, name := range al.StrategyNames() {
		sb.WriteString("### `" + name + "`\n\ndocs\n\n")
	}
	if err := os.WriteFile(full, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := checkCatalog(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("complete catalog reported missing: %v", missing)
	}

	partial := filepath.Join(dir, "partial.md")
	if err := os.WriteFile(partial, []byte("### `random`\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err = checkCatalog(partial)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != len(al.StrategyNames())-1 {
		t.Errorf("partial catalog: got %d missing, want %d", len(missing), len(al.StrategyNames())-1)
	}

	if _, err := checkCatalog(filepath.Join(dir, "absent.md")); err == nil {
		t.Error("missing catalog file must error")
	}
}

// The repo's own STRATEGIES.md must document every registered strategy —
// the same gate CI enforces via `aleval -check-catalog`.
func TestRepoCatalogIsComplete(t *testing.T) {
	missing, err := checkCatalog(filepath.Join("..", "..", "STRATEGIES.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("STRATEGIES.md is missing sections for: %v", missing)
	}
}

func TestRunListAndCatalogModes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"strategies:", "variance-reduction", "datasets:", "synthetic-1d"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-check-catalog", filepath.Join("..", "..", "STRATEGIES.md")}, &out, &errb); code != 0 {
		t.Fatalf("-check-catalog exited %d: %s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-strategies", "no-such"}, &out, &errb); code == 0 {
		t.Error("unknown strategy must exit nonzero")
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-badflag"}, &out, &errb); code == 0 {
		t.Error("unknown flag must exit nonzero")
	}
}

// End-to-end: a tiny grid through the in-process server, twice, with
// byte-identical reports — the CLI-level determinism acceptance check.
func TestRunEndToEndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end eval skipped in -short mode")
	}
	args := []string{
		"-quick",
		"-strategies", "random,variance-reduction",
		"-datasets", "synthetic-1d",
		"-seed", "7",
	}
	var reports [2]string
	for i := range reports {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("run exited %d: %s", code, errb.String())
		}
		reports[i] = out.String()
	}
	if reports[0] != reports[1] {
		t.Errorf("two identical invocations differ:\n-- first --\n%s\n-- second --\n%s",
			reports[0], reports[1])
	}
	if !strings.Contains(reports[0], "== aleval:") {
		t.Errorf("report missing header:\n%s", reports[0])
	}
	if !strings.Contains(reports[0], "variance-reduction") {
		t.Errorf("report missing strategy row:\n%s", reports[0])
	}
}
