// Command alrepro regenerates the paper's tables and figures and writes
// each report (plus its data series as CSV) under an output directory.
//
// Usage:
//
//	alrepro -out results/            # everything, full size
//	alrepro -exp F8 -quick           # one experiment, small batches
//	alrepro -out results/ -resume    # continue a killed run: experiments
//	                                 # with an existing <id>.txt are skipped
//
// SIGINT/SIGTERM flush the -metrics sink before exiting; reports
// already written stay on disk, so a -resume pass picks up where the
// interrupted campaign stopped.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/al"
	"repro/internal/experiments"
	"repro/internal/obs"
)

var generators = map[string]func(experiments.Options) (*experiments.Report, error){
	"T1": experiments.TableI,
	"F1": experiments.Fig1,
	"F2": experiments.Fig2,
	"F3": experiments.Fig3,
	"F4": experiments.Fig4,
	"F5": experiments.Fig5,
	"F6": experiments.Fig6,
	"F7": experiments.Fig7,
	"F8": experiments.Fig8,
	"A1": experiments.AblationGamma,
	"A2": experiments.AblationKernel,
	"A3": experiments.AblationSelection,
	"A4": experiments.AblationParallel,
	"A5": experiments.AblationScaling,
	"A6": experiments.AblationEMCM,
}

var order = []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "A1", "A2", "A3", "A4", "A5", "A6"}

func main() {
	exp := flag.String("exp", "all", "experiment id (T1, F1..F8, A1..A4) or 'all'")
	out := flag.String("out", "results", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "smaller batches for a fast pass")
	plot := flag.Bool("plot", false, "render ASCII plots of each report's series")
	metrics := flag.String("metrics", "", "write obs spans/events/metrics to this JSONL file (see OBSERVABILITY.md)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	parallel := flag.Bool("parallel", true,
		"score AL candidates on all cores (results are identical either way; -parallel=false forces the serial scorer)")
	resume := flag.Bool("resume", false,
		"skip experiments whose <id>.txt report already exists in -out (continue an interrupted campaign)")
	flag.Parse()

	if !*parallel {
		al.SetDefaultScoreWorkers(1)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "alrepro: pprof:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	var sinkFile *os.File
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alrepro:", err)
			os.Exit(1)
		}
		sinkFile = f
		obs.SetSink(f)
	}

	// Each report is written as soon as its generator finishes, so on
	// SIGINT/SIGTERM only the metrics sink needs flushing — completed
	// reports are already on disk for a -resume pass.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nalrepro: caught %v, flushing\n", s)
		if sinkFile != nil {
			obs.DumpMetrics()
			obs.SetSink(nil)
			sinkFile.Sync()
			sinkFile.Close()
			fmt.Fprintf(os.Stderr, "alrepro: metrics flushed to %s\n", *metrics)
		}
		fmt.Fprintf(os.Stderr, "alrepro: continue with -resume -out %s\n", *out)
		os.Exit(130)
	}()

	err := run(*exp, *out, *seed, *quick, *plot, *resume)

	if sinkFile != nil {
		obs.DumpMetrics()
		obs.SetSink(nil)
		if cerr := sinkFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		fmt.Printf("metrics: wrote %s\n", *metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "alrepro:", err)
		os.Exit(1)
	}
	fmt.Println(obs.Brief())
}

func run(exp, out string, seed int64, quick, plot, resume bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	opts := experiments.Options{Seed: seed, Quick: quick}

	ids := order
	if exp != "all" {
		id := strings.ToUpper(exp)
		if _, ok := generators[id]; !ok {
			return fmt.Errorf("unknown experiment %q (want T1, F1..F8, A1..A4, all)", exp)
		}
		ids = []string{id}
	}
	skipped := 0
	for _, id := range ids {
		if resume {
			if _, err := os.Stat(filepath.Join(out, id+".txt")); err == nil {
				fmt.Printf("%s: report exists, skipping (resume)\n", id)
				skipped++
				continue
			}
		}
		rep, err := generators[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			return err
		}
		if plot {
			renderPlots(rep)
		}
		txt, err := os.Create(filepath.Join(out, id+".txt"))
		if err != nil {
			return err
		}
		if _, err := rep.WriteTo(txt); err != nil {
			txt.Close()
			return err
		}
		if err := txt.Close(); err != nil {
			return err
		}
		for name := range rep.Series {
			csvf, err := os.Create(filepath.Join(out, fmt.Sprintf("%s_%s.csv", id, name)))
			if err != nil {
				return err
			}
			if err := rep.WriteSeriesCSV(name, nil, csvf); err != nil {
				csvf.Close()
				return err
			}
			if err := csvf.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("wrote %d report(s) to %s (%d skipped)\n", len(ids)-skipped, out, skipped)
	return nil
}
