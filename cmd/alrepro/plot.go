package main

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/asciiplot"
	"repro/internal/experiments"
)

// renderPlots prints ASCII visualizations of a report's data series:
// grid series (3 columns of x, y, z) become heatmaps; trajectory series
// become scatter plots; metric curves become line charts.
func renderPlots(rep *experiments.Report) {
	names := make([]string, 0, len(rep.Series))
	for name := range rep.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := rep.Series[name]
		if len(rows) == 0 {
			continue
		}
		switch {
		case isGrid(rows):
			fmt.Print(asciiplot.Heatmap(clipToPeak(reshapeGrid(rows), 30), rep.ID+" / "+name))
		case len(rows[0]) >= 3 && rows[0][0] == 1 && len(rows) > 3 && rows[1][0] == 2:
			// Trajectory-style series: (iter, x, y, ...): scatter x vs y.
			plotTrajectory(rep.ID+" / "+name, rows)
		default:
			// Curve: first column is the abscissa, second the value.
			ys := make([]float64, len(rows))
			for i, r := range rows {
				if len(r) > 1 {
					ys[i] = r[1]
				}
			}
			fmt.Print(asciiplot.Series(ys, 70, 12, rep.ID+" / "+name))
		}
	}
}

// isGrid detects a flattened 2-D grid: 3 columns whose first column takes
// each distinct value the same number of times.
func isGrid(rows [][]float64) bool {
	if len(rows) < 9 || len(rows[0]) != 3 {
		return false
	}
	counts := map[float64]int{}
	for _, r := range rows {
		counts[r[0]]++
	}
	if len(counts) < 3 || len(rows)%len(counts) != 0 {
		return false
	}
	per := len(rows) / len(counts)
	for _, c := range counts {
		if c != per {
			return false
		}
	}
	return true
}

func reshapeGrid(rows [][]float64) [][]float64 {
	var xs []float64
	seen := map[float64]bool{}
	for _, r := range rows {
		if !seen[r[0]] {
			seen[r[0]] = true
			xs = append(xs, r[0])
		}
	}
	sort.Float64s(xs)
	idx := map[float64]int{}
	for i, x := range xs {
		idx[x] = i
	}
	cols := len(rows) / len(xs)
	z := make([][]float64, len(xs))
	for i := range z {
		z[i] = make([]float64, cols)
		for j := range z[i] {
			z[i][j] = math.NaN()
		}
	}
	fill := make([]int, len(xs))
	for _, r := range rows {
		i := idx[r[0]]
		if fill[i] < cols {
			z[i][fill[i]] = r[2]
			fill[i]++
		}
	}
	return z
}

// clipToPeak floors a landscape at (max − span) so catastrophic values at
// degenerate hyperparameters don't compress the interesting region into
// one ramp character.
func clipToPeak(z [][]float64, span float64) [][]float64 {
	peak := math.Inf(-1)
	for _, row := range z {
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	floor := peak - span
	out := make([][]float64, len(z))
	for i, row := range z {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			if v < floor {
				v = floor
			}
			out[i][j] = v
		}
	}
	return out
}

func plotTrajectory(title string, rows [][]float64) {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		if r[1] < xmin {
			xmin = r[1]
		}
		if r[1] > xmax {
			xmax = r[1]
		}
		if r[2] < ymin {
			ymin = r[2]
		}
		if r[2] > ymax {
			ymax = r[2]
		}
	}
	c := asciiplot.NewCanvas(70, 16, xmin, xmax, ymin, ymax)
	c.SetLabels(title, "var1", "var2")
	// Later selections first; the numbered first-ten marks go on top so
	// the early star pattern stays visible.
	for i := len(rows) - 1; i >= 10 && i < len(rows); i-- {
		c.Plot(rows[i][1], rows[i][2], 'o')
	}
	for i := 9; i >= 0 && i < len(rows); i-- {
		c.Plot(rows[i][1], rows[i][2], rune('0'+i))
	}
	fmt.Print(c.String())
}
