// Command gpfit fits a Gaussian process regression to a dataset CSV and
// prints the fitted hyperparameters, log marginal likelihood, and
// predictions with 95% confidence intervals along a 1-D sweep of the
// first variable (other variables fixed at their medians).
//
// Usage:
//
//	gpfit -data performance.csv -response runtime_s -operator poisson1 -np 32 -freq 2.4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/stats"
)

func main() {
	data := flag.String("data", "", "dataset CSV (required)")
	response := flag.String("response", dataset.RespRuntime, "response column")
	operator := flag.String("operator", "poisson1", "operator filter (empty = all)")
	np := flag.Float64("np", 32, "NP filter (0 = all)")
	freq := flag.Float64("freq", 2.4, "frequency filter (0 = all)")
	floor := flag.Float64("floor", 0.01, "noise floor σn")
	seed := flag.Int64("seed", 1, "random seed")
	gridN := flag.Int("grid", 25, "prediction sweep points")
	kernelName := flag.String("kernel", "rbf", "covariance: rbf | matern32 | matern52 | rq | periodic")
	selection := flag.String("selection", "lml", "model selection: lml | loocv")
	flag.Parse()

	if err := run(*data, *response, *operator, *np, *freq, *floor, *seed, *gridN, *kernelName, *selection); err != nil {
		fmt.Fprintln(os.Stderr, "gpfit:", err)
		os.Exit(1)
	}
}

func kernelFor(name string) (kernel.Kernel, error) {
	switch name {
	case "rbf":
		return kernel.NewRBF(1, 1), nil
	case "matern32":
		return kernel.NewMatern32(1, 1), nil
	case "matern52":
		return kernel.NewMatern52(1, 1), nil
	case "rq":
		return kernel.NewRationalQuadratic(1, 1, 1), nil
	case "periodic":
		return kernel.NewPeriodic(1, 1, 1), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q", name)
	}
}

func run(data, response, operator string, np, freq, floor float64, seed int64, gridN int, kernelName, selection string) error {
	if data == "" {
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(data)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f)
	if err != nil {
		return err
	}
	if operator != "" {
		d = d.WhereTag(dataset.TagOperator, operator)
	}
	if np > 0 {
		d = d.WhereVar(dataset.VarNP, np)
	}
	if freq > 0 {
		d = d.WhereVar(dataset.VarFreq, freq)
	}
	d = d.Project(dataset.VarSize)
	if err := d.LogVar(dataset.VarSize); err != nil {
		return err
	}
	if err := d.LogResp(response); err != nil {
		return err
	}
	if d.Len() == 0 {
		return fmt.Errorf("no rows after filtering")
	}
	fmt.Printf("fitting GPR to %d jobs, response log10(%s), %s kernel, %s selection\n",
		d.Len(), response, kernelName, selection)

	k, err := kernelFor(kernelName)
	if err != nil {
		return err
	}
	cfg := gp.Config{
		Kernel:     k,
		NoiseInit:  0.1,
		NoiseFloor: floor,
		Optimize:   true,
		Restarts:   4,
	}
	rng := rand.New(rand.NewSource(seed))
	var g *gp.GP
	switch selection {
	case "lml":
		g, err = gp.Fit(cfg, d.Matrix(nil), d.RespVec(response, nil), rng)
	case "loocv":
		g, err = gp.FitLOOCV(cfg, d.Matrix(nil), d.RespVec(response, nil), rng)
	default:
		return fmt.Errorf("unknown selection %q", selection)
	}
	if err != nil {
		return err
	}
	names := g.HyperNames()
	for i, v := range g.Hyper() {
		fmt.Printf("  %-10s = %.4f\n", names[i], v)
	}
	fmt.Printf("  σn         = %.4g\n", g.Noise())
	fmt.Printf("  LML        = %.4f\n", g.LML())

	xs := d.Var(dataset.VarSize)
	lo, hi := stats.MinMax(xs)
	fmt.Printf("%-12s %-12s %-12s %-12s\n", "log10_size", "mean", "ci_lo", "ci_hi")
	for _, x := range gp.Linspace(lo, hi, gridN) {
		p := g.Predict([]float64{x})
		cl, ch := p.CI(2)
		fmt.Printf("%-12.4f %-12.4f %-12.4f %-12.4f\n", x, p.Mean, cl, ch)
	}
	return nil
}
