// Command mgbench runs the real geometric multigrid solver (the HPGMG-FE
// stand-in) directly, reporting solve statistics the way the original
// benchmark binary does: per-cycle residuals, discretization error, work
// counts, and throughput in DOF/s.
//
// Usage:
//
//	mgbench -op poisson2 -n 63 -workers 8 -cycles 3 -smoother red-black
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/multigrid"
)

func main() {
	opName := flag.String("op", "poisson1", "operator: poisson1 | poisson2 | poisson2affine")
	n := flag.Int("n", 31, "interior points per dimension (2^k - 1)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel sweep workers")
	cycles := flag.Int("cycles", 3, "V-cycles after FMG")
	smoother := flag.String("smoother", "jacobi", "smoother: jacobi | red-black")
	wcycle := flag.Bool("w", false, "use W-cycles")
	flag.Parse()

	if err := run(*opName, *n, *workers, *cycles, *smoother, *wcycle); err != nil {
		fmt.Fprintln(os.Stderr, "mgbench:", err)
		os.Exit(1)
	}
}

func run(opName string, n, workers, cycles int, smoother string, wcycle bool) error {
	op, err := multigrid.ParseOperator(opName)
	if err != nil {
		return err
	}
	cfg := multigrid.Config{Op: op, N: n, Workers: workers}
	switch smoother {
	case "jacobi":
		cfg.Smooth = multigrid.Jacobi
	case "red-black":
		cfg.Smooth = multigrid.RedBlack
	default:
		return fmt.Errorf("unknown smoother %q", smoother)
	}
	if wcycle {
		cfg.Shape = multigrid.WCycle
	}
	s, err := multigrid.NewSolver(cfg)
	if err != nil {
		return err
	}
	dof := multigrid.DOF(n)
	fmt.Printf("mgbench: %v, %d^3 grid (%d dof), %d levels, %d workers, %s smoothing\n",
		op, n, dof, s.NumLevels(), workers, smoother)

	// Manufactured solution u = sin(πx)sin(πy)sin(πz).
	c := 3.0
	if op == multigrid.Poisson2Affine {
		// Matches the affine metric baked into the operator.
		c = 1.0 + 1.0/(1.2*1.2) + 1.0/(0.8*0.8)
	}
	s.SetRHS(func(x, y, z float64) float64 {
		return c * math.Pi * math.Pi *
			math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
	})

	start := time.Now()
	r := s.FMG(1)
	fmt.Printf("FMG        residual %.3e  (%.3fs)\n", r, time.Since(start).Seconds())
	for i := 1; i <= cycles; i++ {
		t0 := time.Now()
		r = s.VCycle()
		fmt.Printf("V-cycle %2d residual %.3e  (%.3fs)\n", i, r, time.Since(t0).Seconds())
	}
	elapsed := time.Since(start).Seconds()

	st := s.Stats()
	fmt.Printf("total: %.3fs, %.3g flops, %.3g bytes, %.3g DOF/s, %.2f GF/s\n",
		elapsed, float64(st.Flops), float64(st.Bytes),
		float64(dof)*float64(1+cycles)/elapsed, float64(st.Flops)/elapsed/1e9)

	// Discretization error against the manufactured solution.
	h := s.H()
	var errSum float64
	for k := 1; k <= n; k++ {
		for j := 1; j <= n; j++ {
			for i := 1; i <= n; i++ {
				d := s.SolutionAt(i, j, k) -
					math.Sin(math.Pi*float64(i)*h)*math.Sin(math.Pi*float64(j)*h)*math.Sin(math.Pi*float64(k)*h)
				errSum += d * d
			}
		}
	}
	fmt.Printf("L2 error vs manufactured solution: %.3e (O(h²) = %.3e)\n",
		math.Sqrt(errSum*h*h*h), h*h)
	return nil
}
