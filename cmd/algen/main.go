// Command algen regenerates the paper's two datasets on the simulated
// cluster and writes them as CSV.
//
// Usage:
//
//	algen -out datasets/ -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/hpgmg"
)

func main() {
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if err := run(*out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "algen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	perfResults, err := hpgmg.GeneratePerformance(seed)
	if err != nil {
		return err
	}
	perf, err := dataset.FromPerformance(perfResults)
	if err != nil {
		return err
	}
	if err := writeCSV(perf, filepath.Join(out, "performance.csv")); err != nil {
		return err
	}
	fmt.Printf("performance.csv: %d jobs\n", perf.Len())

	powResults, err := hpgmg.GeneratePower(seed)
	if err != nil {
		return err
	}
	pow, err := dataset.FromPower(powResults)
	if err != nil {
		return err
	}
	if err := writeCSV(pow, filepath.Join(out, "power.csv")); err != nil {
		return err
	}
	fmt.Printf("power.csv: %d jobs\n", pow.Len())
	return nil
}

func writeCSV(d *dataset.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
