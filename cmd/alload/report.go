package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Metrics registered by the load generator (documented in
// OBSERVABILITY.md). Latency timers are per route; counters aggregate
// across routes.
var (
	loadRequests  = obs.C("load.request.count")
	loadCloned    = obs.C("load.request.cloned")
	loadShed      = obs.C("load.request.shed")
	loadErrors    = obs.C("load.request.errors")
	loadConflicts = obs.C("load.request.conflicts")
)

// routeStats accumulates outcomes and exact latency samples for one
// route. The obs histogram gives the coarse always-on view; the sample
// slice gives the exact quantiles the SLO report is gated on.
type routeStats struct {
	timer *obs.Histogram

	mu        sync.Mutex
	ms        []float64
	ok        int
	shed      int
	conflicts int
	errors    int
}

// record files one request outcome. latMs is wall time for the whole
// exchange; outcome is one of "ok", "shed", "conflict", "error".
func (s *routeStats) record(latMs float64, outcome string) {
	s.timer.Observe(latMs / 1000)
	loadRequests.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ms = append(s.ms, latMs)
	switch outcome {
	case "ok":
		s.ok++
	case "shed":
		s.shed++
		loadShed.Inc()
	case "conflict":
		s.conflicts++
		loadConflicts.Inc()
	default:
		s.errors++
		loadErrors.Inc()
	}
}

func newRouteStats(route string) *routeStats {
	return &routeStats{timer: obs.T("load." + route + ".latency")}
}

// RouteReport is the per-route slice of the SLO report.
type RouteReport struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Conflicts int     `json:"conflicts"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// SurrogateReport records how faithful the oracle standing in for the
// backend was, so an SLO report can never silently come from a drifted
// model.
type SurrogateReport struct {
	Kind       string  `json:"kind"`
	Samples    int     `json:"samples"`
	LOORelRMSE float64 `json:"loo_rel_rmse"`
}

// SLOReport is the machine-readable outcome of one replay, consumed by
// scripts/slodiff. Rates are over total requests (clones included).
type SLOReport struct {
	Seed            int64                  `json:"seed"`
	Fingerprint     string                 `json:"fingerprint"`
	PlannedRequests int                    `json:"planned_requests"`
	TotalRequests   int                    `json:"total_requests"`
	Clones          int                    `json:"clones"`
	DurationMs      float64                `json:"duration_ms"`
	ErrorRate       float64                `json:"error_rate"`
	ShedRate        float64                `json:"shed_rate"`
	Surrogate       SurrogateReport        `json:"surrogate"`
	Routes          map[string]RouteReport `json:"routes"`
}

// quantile reads the q-quantile (0 ≤ q ≤ 1) from an ASCENDING-sorted
// sample slice using nearest-rank; empty input yields 0.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// snapshot freezes one route's stats into its report row.
func (s *routeStats) snapshot() RouteReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	sorted := append([]float64(nil), s.ms...)
	sort.Float64s(sorted)
	rep := RouteReport{
		Requests:  len(s.ms),
		OK:        s.ok,
		Conflicts: s.conflicts,
		Shed:      s.shed,
		Errors:    s.errors,
		P50Ms:     quantile(sorted, 0.50),
		P90Ms:     quantile(sorted, 0.90),
		P99Ms:     quantile(sorted, 0.99),
	}
	if n := len(sorted); n > 0 {
		rep.MaxMs = sorted[n-1]
	}
	return rep
}

// writeReport emits the report as indented JSON to path ("" = skip)
// and a human summary to out.
func writeReport(rep *SLOReport, path string, out io.Writer) error {
	fmt.Fprintf(out, "alload: %d requests (%d planned, %d clones) in %.0fms — error rate %.4f, shed rate %.4f\n",
		rep.TotalRequests, rep.PlannedRequests, rep.Clones, rep.DurationMs, rep.ErrorRate, rep.ShedRate)
	routes := make([]string, 0, len(rep.Routes))
	for r := range rep.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		rr := rep.Routes[r]
		fmt.Fprintf(out, "  %-8s %6d req  ok %-6d conflict %-5d shed %-5d err %-5d p50 %7.2fms  p99 %7.2fms\n",
			r, rr.Requests, rr.OK, rr.Conflicts, rr.Shed, rr.Errors, rr.P50Ms, rr.P99Ms)
	}
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
