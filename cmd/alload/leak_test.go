package main

import (
	"bytes"
	"context"
	"math"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// recordLeakTestJournals produces one completed client-campaign journal
// in dir for the surrogate to train on, without touching the dataset
// registry.
func recordLeakTestJournals(t *testing.T, dir string) {
	t.Helper()
	mgr := serve.NewManager(serve.Config{CheckpointDir: dir})
	grid := make([][]float64, 12)
	for i := range grid {
		grid[i] = []float64{3 * float64(i) / 11}
	}
	c, err := mgr.Create(serve.CampaignSpec{
		Name: "leak-recording", Source: "client", Candidates: grid,
		Seeds: []int{0, 11}, Strategy: "variance-reduction",
		Iterations: 8, Restarts: 1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("recording create: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("recording campaign stuck")
		}
		sug, err := c.Suggest()
		if err != nil {
			st, serr := c.Status(false)
			if serr == nil && (st.State == serve.StateDone || st.State == serve.StateFailed) {
				break
			}
			time.Sleep(time.Millisecond)
			continue
		}
		x := sug.X[0]
		if err := c.Observe(sug.Seq, math.Sin(2*x)+0.5*x, 1+x); err != nil {
			t.Fatalf("recording observe: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("recording shutdown: %v", err)
	}
}

// leakedLoadGoroutines scans for alload's own replay goroutines — the
// campaign drivers and the background worker pool — plus any campaign
// goroutines of the in-test server.
func leakedLoadGoroutines() []string {
	targets := []string{
		"main.(*loader).",
		"main.replay.func",
		"serve.(*Campaign).actor",
		"serve.(*Campaign).engine",
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		for _, target := range targets {
			if strings.Contains(g, target) {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

// TestReplayDriverPoolNoLeakOnServerDeath kills the target server in
// the middle of a replay and requires (a) the replay to abort with an
// error instead of hanging, and (b) every driver and background worker
// goroutine to unwind — the mirror of the aleval and serve leak
// checkers for the load-generator side.
func TestReplayDriverPoolNoLeakOnServerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay in -short mode")
	}
	journals := t.TempDir()
	recordLeakTestJournals(t, journals)

	mgr := serve.NewManager(serve.Config{})
	handler := serve.NewServerWith(mgr, serve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{}
	var observes atomic.Int64
	var dieOnce sync.Once
	srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Kill the server abruptly once the replay is mid-campaign: a
		// few observes have been acknowledged and drivers are in flight.
		if strings.HasSuffix(r.URL.Path, "/observe") && observes.Add(1) == 3 {
			dieOnce.Do(func() { go srv.Close() })
		}
		handler.ServeHTTP(w, r)
	})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("server manager shutdown: %v", err)
		}
	}()

	cfg := config{
		server:       "http://" + ln.Addr().String(),
		journals:     journals,
		surKind:      "knn",
		requests:     60,
		concurrency:  4,
		campaigns:    2,
		iterations:   10,
		predictBatch: 4,
		seed:         9,
		timeout:      60 * time.Second,
	}
	var stdout, stderrB bytes.Buffer
	start := time.Now()
	if err := replay(cfg, &stdout, &stderrB); err == nil {
		t.Fatalf("replay succeeded against a server that died mid-run\nstdout:\n%s", stdout.String())
	}
	if elapsed := time.Since(start); elapsed > 45*time.Second {
		t.Fatalf("replay took %v to abort after the server died — drivers are not failing fast", elapsed)
	}

	// Drain the in-test server's own campaigns before scanning, so the
	// scan sees only what the replay itself leaked. (The deferred
	// Shutdown call stays valid — it is idempotent.)
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := mgr.Shutdown(sctx); err != nil {
		t.Fatalf("server manager shutdown: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		stacks := leakedLoadGoroutines()
		if len(stacks) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replay goroutine(s) leaked after the aborted run:\n%s",
				len(stacks), strings.Join(stacks, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
