// Command alload replays production-shaped load against an alserve
// instance with zero backend evaluations: a surrogate model trained on
// recorded campaign journals (internal/surrogate) stands in for the
// expensive oracle, so tens of thousands of suggest/observe/predict
// requests cost microseconds of CPU instead of cluster time.
//
// The replay is a deterministic plan derived from -seed: a set of
// client-sourced campaigns whose candidate grid is the recorded input
// set (driven to completion by goroutines that answer suggestions from
// the surrogate), plus an open-loop background stream of predict
// batches, suggest polls, and status reads, with optional request
// cloning and client-side chaos. The plan fingerprint is printed and
// embedded in the SLO report, so two runs with equal seeds over equal
// recordings are provably replaying identical traffic.
//
// Latency, shed, conflict, and error outcomes are captured per route
// (exact quantiles in the report, load.* obs metrics for dashboards)
// and written as an SLO report JSON for scripts/slodiff to gate in CI:
//
//	alload -requests 10000 -seed 7 -slo-out slo_report.json
//	go run ./scripts/slodiff -baseline SLO_baseline.json slo_report.json
//
// With no -server, an in-process alserve (with admission control per
// -max-inflight/-max-queue) is started; with no -journals, a seeded
// recording campaign is run first to produce training journals.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/al"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/surrogate"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

type config struct {
	server     string
	journals   string
	recordDS   string
	recordIter int
	surKind    string
	knnK       int

	requests     int
	concurrency  int
	rate         float64
	campaigns    int
	iterations   int
	cloneRate    float64
	clones       int
	predictBatch int
	seed         int64
	timeout      time.Duration

	maxInFlight int
	maxQueue    int

	chaosSeed     int64
	chaosLatRate  float64
	chaosLat      time.Duration
	chaosDupRate  float64
	chaosDropRate float64

	sloOut          string
	fingerprintOnly bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("alload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.server, "server", "", "target alserve base URL (empty = start an in-process server)")
	fs.StringVar(&cfg.journals, "journals", "", "directory of recorded campaign journals to train the surrogate on (empty = record one in-process)")
	fs.StringVar(&cfg.recordDS, "record-dataset", "synthetic", "dataset for the bootstrap recording campaign: synthetic or performance")
	fs.IntVar(&cfg.recordIter, "record-iterations", 20, "AL iterations in the bootstrap recording campaign")
	fs.StringVar(&cfg.surKind, "surrogate", "knn", "surrogate model kind: knn or ols")
	fs.IntVar(&cfg.knnK, "knn-k", 0, "neighbor count for the knn surrogate (0 = default)")
	fs.IntVar(&cfg.requests, "requests", 10000, "background requests to plan (driver traffic comes on top)")
	fs.IntVar(&cfg.concurrency, "concurrency", 16, "background worker pool size")
	fs.Float64Var(&cfg.rate, "rate", 0, "open-loop arrival rate in requests/sec, exponential interarrivals (0 = as fast as the pool allows)")
	fs.IntVar(&cfg.campaigns, "campaigns", 4, "concurrent replay campaigns driven to completion")
	fs.IntVar(&cfg.iterations, "iterations", 25, "AL iterations per replay campaign")
	fs.Float64Var(&cfg.cloneRate, "clone-rate", 0.02, "probability a background request is cloned")
	fs.IntVar(&cfg.clones, "clones", 1, "duplicate sends per cloned request")
	fs.IntVar(&cfg.predictBatch, "predict-batch", 8, "points per predict request")
	fs.Int64Var(&cfg.seed, "seed", 7, "plan / surrogate / pacing seed")
	fs.DurationVar(&cfg.timeout, "timeout", 5*time.Minute, "overall replay deadline")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", 64, "in-process server admission bound (0 = unlimited)")
	fs.IntVar(&cfg.maxQueue, "max-queue", 0, "in-process server admission queue (0 = 2x max-inflight)")
	fs.Int64Var(&cfg.chaosSeed, "chaos-seed", 1, "seed for client-side chaos decisions")
	fs.Float64Var(&cfg.chaosLatRate, "chaos-latency-rate", 0, "probability of injected latency per background request")
	fs.DurationVar(&cfg.chaosLat, "chaos-latency", 10*time.Millisecond, "maximum injected client latency")
	fs.Float64Var(&cfg.chaosDupRate, "chaos-dup-rate", 0, "probability a background request is duplicated by the chaos transport")
	fs.Float64Var(&cfg.chaosDropRate, "chaos-drop-rate", 0, "probability a background response is dropped after the server handled it")
	fs.StringVar(&cfg.sloOut, "slo-out", "", "write the SLO report JSON here")
	fs.BoolVar(&cfg.fingerprintOnly, "fingerprint-only", false, "print the plan fingerprint and exit without replaying")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := replay(cfg, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "alload:", err)
		return 1
	}
	return 0
}

// performanceDataset mirrors alserve's registration: the paper's §V-B
// study subset as a recording target.
func performanceDataset(spec serve.DatasetSpec) (*dataset.Dataset, string, error) {
	d, err := repro.GeneratePerformanceDataset(spec.Seed)
	if err != nil {
		return nil, "", err
	}
	sub, err := repro.StudySubset2D(d)
	if err != nil {
		return nil, "", err
	}
	return sub, dataset.RespRuntime, nil
}

// recordJournals runs one seeded dataset-backed campaign against an
// in-process manager with persistence on, producing the journal the
// surrogate trains from. This is the only stage that touches a "real"
// (simulated) backend; everything after is surrogate-only.
func recordJournals(cfg config, dir string) error {
	serve.RegisterDataset("performance", performanceDataset)
	mgr := serve.NewManager(serve.Config{CheckpointDir: dir})
	spec := serve.CampaignSpec{
		Name:       "surrogate-recording",
		Source:     "dataset",
		Dataset:    &serve.DatasetSpec{Name: cfg.recordDS, Seed: cfg.seed, N: 40, Noise: 0.05},
		Seeds:      []int{0, 39},
		Strategy:   "variance-reduction",
		Iterations: cfg.recordIter,
		Restarts:   1,
		Seed:       cfg.seed,
	}
	if cfg.recordDS == "performance" {
		// The study grid has its own size; seed the corners the way
		// alserve demos do.
		spec.Seeds = []int{0, 1}
	}
	c, err := mgr.Create(spec)
	if err != nil {
		return fmt.Errorf("recording campaign: %w", err)
	}
	c.Wait()
	st, err := c.Status(false)
	if err != nil {
		return err
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("recording campaign ended %s: %s", st.State, st.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return mgr.Shutdown(ctx)
}

// localServer is the in-process alserve stood up when -server is empty.
type localServer struct {
	url string
	srv *http.Server
	mgr *serve.Manager
	err chan error
}

func startLocalServer(cfg config) (*localServer, error) {
	mgr := serve.NewManager(serve.Config{})
	handler := serve.NewServerWith(mgr, serve.ServerConfig{
		Admission: resilience.AdmissionConfig{
			MaxInFlight: cfg.maxInFlight,
			MaxQueue:    cfg.maxQueue,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ls := &localServer{
		url: "http://" + ln.Addr().String(),
		srv: &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		mgr: mgr,
		err: make(chan error, 1),
	}
	go func() { ls.err <- ls.srv.Serve(ln) }()
	return ls, nil
}

func (ls *localServer) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ls.srv.Shutdown(ctx); err != nil {
		return err
	}
	return ls.mgr.Shutdown(ctx)
}

// loader holds the shared replay state: the target, the two client
// stacks (retrying for correctness-critical driver traffic, raw for
// background traffic so shed 429s stay visible), and per-route stats.
type loader struct {
	base    string
	driver  *http.Client // retrying, idempotency-keyed
	bg      *http.Client // no retries: a 429 here IS the measurement
	ids     []string     // campaign index → id, read-only after create
	stats   map[string]*routeStats
	cloned  int64
	cloneMu sync.Mutex
}

func (l *loader) addClones(n int) {
	l.cloneMu.Lock()
	l.cloned += int64(n)
	l.cloneMu.Unlock()
	loadCloned.Add(int64(n))
}

// outcome buckets a completed exchange. Transport-level failures arrive
// with resp == nil.
func outcome(resp *http.Response, err error) string {
	switch {
	case err != nil:
		return "error"
	case resp.StatusCode == http.StatusTooManyRequests:
		return "shed"
	case resp.StatusCode == http.StatusConflict:
		return "conflict"
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return "ok"
	default:
		return "error"
	}
}

// exchange performs one timed HTTP request on client and files it under
// route. The response body is drained so connections get reused; the
// parsed body is returned only for 200s when out != nil.
func (l *loader) exchange(ctx context.Context, client *http.Client, route, method, url string, body []byte, key string, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set(resilience.IdempotencyHeader, key)
	}
	start := time.Now()
	resp, err := client.Do(req)
	latMs := float64(time.Since(start)) / float64(time.Millisecond)
	l.stats[route].record(latMs, outcome(resp, err))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// doOp fires one planned background request plus its clones, all
// concurrently, through the non-retrying client. Every send is its own
// measurement.
func (l *loader) doOp(ctx context.Context, o op) {
	send := func() {
		id := l.ids[o.Campaign]
		switch o.Kind {
		case opPredict:
			body, _ := json.Marshal(serve.PredictRequest{Points: o.Points})
			l.exchange(ctx, l.bg, "predict", http.MethodPost, l.base+"/campaigns/"+id+"/predict", body, "", nil)
		case opSuggest:
			l.exchange(ctx, l.bg, "suggest", http.MethodGet, l.base+"/campaigns/"+id+"/suggest", nil, "", nil)
		default:
			l.exchange(ctx, l.bg, "status", http.MethodGet, l.base+"/campaigns/"+id, nil, "", nil)
		}
	}
	if o.Clones > 0 {
		l.addClones(o.Clones)
		var wg sync.WaitGroup
		for i := 0; i < o.Clones; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); send() }()
		}
		send()
		wg.Wait()
		return
	}
	send()
}

func replay(cfg config, stdout, stderr io.Writer) error {
	journalDir := cfg.journals
	if journalDir == "" {
		dir, err := os.MkdirTemp("", "alload-journals-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if err := recordJournals(cfg, dir); err != nil {
			return err
		}
		journalDir = dir
	}
	sur, samples, err := surrogate.FromJournalDir(journalDir, surrogate.Config{Kind: cfg.surKind, K: cfg.knnK})
	if err != nil {
		return err
	}
	loo := sur.LOOEval()
	fmt.Fprintf(stdout, "alload: surrogate %s over %d samples (dims %d, LOO rel RMSE %.4f)\n",
		sur.Kind(), len(samples), sur.Dims(), loo.RelRMSE)

	p, err := buildPlan(planConfig{
		Seed:         cfg.seed,
		Requests:     cfg.requests,
		Campaigns:    cfg.campaigns,
		Iterations:   cfg.iterations,
		PredictBatch: cfg.predictBatch,
		CloneRate:    cfg.cloneRate,
		Clones:       cfg.clones,
	}, sur)
	if err != nil {
		return err
	}
	fp := p.fingerprint()
	fmt.Fprintf(stdout, "alload: plan fingerprint %016x (%d background ops, %d campaigns)\n", fp, len(p.Ops), len(p.Specs))
	if cfg.fingerprintOnly {
		return nil
	}

	base := cfg.server
	if base == "" {
		ls, err := startLocalServer(cfg)
		if err != nil {
			return err
		}
		defer func() {
			if err := ls.shutdown(); err != nil {
				fmt.Fprintln(stderr, "alload: server shutdown:", err)
			}
		}()
		base = ls.url
		fmt.Fprintf(stdout, "alload: in-process alserve on %s (max-inflight %d)\n", base, cfg.maxInFlight)
	}

	var bgTransport http.RoundTripper = http.DefaultTransport
	if cfg.chaosLatRate > 0 || cfg.chaosDupRate > 0 || cfg.chaosDropRate > 0 {
		bgTransport = faults.WrapRoundTripper(bgTransport, faults.NewNet(faults.NetworkConfig{
			Seed:             cfg.chaosSeed,
			LatencyRate:      cfg.chaosLatRate,
			Latency:          cfg.chaosLat,
			DuplicateRate:    cfg.chaosDupRate,
			DropResponseRate: cfg.chaosDropRate,
		}))
		fmt.Fprintln(stderr, "alload: CHAOS transport active on background traffic")
	}
	l := &loader{
		base: base,
		driver: resilience.NewClient(nil, resilience.TransportConfig{
			Seed:    cfg.seed,
			Backoff: resilience.Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second},
		}),
		bg:  &http.Client{Transport: bgTransport},
		ids: make([]string, len(p.Specs)),
		stats: map[string]*routeStats{
			"create":  newRouteStats("create"),
			"suggest": newRouteStats("suggest"),
			"observe": newRouteStats("observe"),
			"predict": newRouteStats("predict"),
			"status":  newRouteStats("status"),
		},
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	start := time.Now()

	// Campaigns are created up front (background ops need resolvable
	// ids), then drivers and the background stream run concurrently.
	for i, spec := range p.Specs {
		body, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		var created serve.CampaignStatus
		key := fmt.Sprintf("create-%016x-%d", fp, i)
		if code, err := l.exchange(ctx, l.driver, "create", http.MethodPost, l.base+"/campaigns", body, key, &created); err != nil {
			return fmt.Errorf("create campaign %d: %w", i, err)
		} else if code != http.StatusCreated {
			return fmt.Errorf("create campaign %d: HTTP %d", i, code)
		}
		l.ids[i] = created.ID
	}

	var wg sync.WaitGroup
	errMu := sync.Mutex{}
	var driverErrs []error
	for i := range p.Specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.driveExisting(ctx, i, sur); err != nil && ctx.Err() == nil {
				errMu.Lock()
				driverErrs = append(driverErrs, err)
				errMu.Unlock()
			}
		}(i)
	}

	ops := make(chan op)
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range ops {
				l.doOp(ctx, o)
			}
		}()
	}
	pace := rand.New(rand.NewSource(cfg.seed ^ 0x5f5f5f5f))
dispatch:
	for _, o := range p.Ops {
		if cfg.rate > 0 {
			d := time.Duration(pace.ExpFloat64() / cfg.rate * float64(time.Second))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break dispatch
			}
		}
		select {
		case ops <- o:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ops)
	wg.Wait()
	if ctx.Err() != nil {
		return fmt.Errorf("replay aborted at %s: %w", cfg.timeout, ctx.Err())
	}
	if len(driverErrs) > 0 {
		return fmt.Errorf("%d driver(s) failed, first: %w", len(driverErrs), driverErrs[0])
	}

	rep := l.report(cfg, p, fp, loo, sur, time.Since(start))
	return writeReport(rep, cfg.sloOut, stdout)
}

// driveExisting is runDriver for a campaign already created (the
// up-front create loop owns creation).
func (l *loader) driveExisting(ctx context.Context, idx int, sur *surrogate.Model) error {
	id := l.ids[idx]
	for ctx.Err() == nil {
		var sug serve.Suggestion
		code, err := l.exchange(ctx, l.driver, "suggest", http.MethodGet, l.base+"/campaigns/"+id+"/suggest", nil, "", &sug)
		switch {
		case err != nil:
			return fmt.Errorf("driver %d: suggest: %w", idx, err)
		case code == http.StatusConflict:
			var st serve.CampaignStatus
			if _, err := l.exchange(ctx, l.driver, "status", http.MethodGet, l.base+"/campaigns/"+id, nil, "", &st); err != nil {
				return fmt.Errorf("driver %d: status: %w", idx, err)
			}
			switch st.State {
			case serve.StateDone, serve.StateStopped:
				return nil
			case serve.StateFailed:
				return fmt.Errorf("driver %d: campaign %s failed: %s", idx, id, st.Error)
			}
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
			}
			continue
		case code != http.StatusOK:
			return fmt.Errorf("driver %d: suggest returned HTTP %d", idx, code)
		}
		y, cost := sur.Predict(sug.X)
		body, err := json.Marshal(serve.ObserveRequest{Seq: sug.Seq, Y: al.JSONFloat(y), Cost: al.JSONFloat(cost)})
		if err != nil {
			return err
		}
		key := fmt.Sprintf("%s-seq%d", id, sug.Seq)
		if code, err := l.exchange(ctx, l.driver, "observe", http.MethodPost, l.base+"/campaigns/"+id+"/observe", body, key, nil); err != nil {
			return fmt.Errorf("driver %d: observe seq %d: %w", idx, sug.Seq, err)
		} else if code != http.StatusOK && code != http.StatusConflict {
			return fmt.Errorf("driver %d: observe seq %d returned HTTP %d", idx, sug.Seq, code)
		}
	}
	return ctx.Err()
}

// report assembles the SLO report from the accumulated route stats.
func (l *loader) report(cfg config, p *plan, fp uint64, loo surrogate.Report, sur *surrogate.Model, dur time.Duration) *SLOReport {
	rep := &SLOReport{
		Seed:            cfg.seed,
		Fingerprint:     fmt.Sprintf("%016x", fp),
		PlannedRequests: len(p.Ops),
		DurationMs:      float64(dur) / float64(time.Millisecond),
		Surrogate: SurrogateReport{
			Kind:       sur.Kind(),
			Samples:    sur.Len(),
			LOORelRMSE: loo.RelRMSE,
		},
		Routes: make(map[string]RouteReport, len(l.stats)),
	}
	l.cloneMu.Lock()
	rep.Clones = int(l.cloned)
	l.cloneMu.Unlock()
	var total, shed, errs int
	for route, st := range l.stats {
		rr := st.snapshot()
		rep.Routes[route] = rr
		total += rr.Requests
		shed += rr.Shed
		errs += rr.Errors
	}
	rep.TotalRequests = total
	if total > 0 {
		rep.ErrorRate = float64(errs) / float64(total)
		rep.ShedRate = float64(shed) / float64(total)
	}
	return rep
}
