package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/surrogate"
)

func testModel(t *testing.T, n int) *surrogate.Model {
	t.Helper()
	samples := make([]surrogate.Sample, n)
	for i := range samples {
		x := 3 * float64(i) / float64(n-1)
		samples[i] = surrogate.Sample{X: []float64{x}, Y: math.Sin(2*x) + 0.5*x, Cost: 1 + x}
	}
	m, err := surrogate.Fit(samples, surrogate.Config{})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	return m
}

func TestPlanFingerprintDeterministic(t *testing.T) {
	m := testModel(t, 20)
	cfg := planConfig{Seed: 7, Requests: 500, Campaigns: 3, Iterations: 10, PredictBatch: 4, CloneRate: 0.1, Clones: 2}
	p1, err := buildPlan(cfg, m)
	if err != nil {
		t.Fatalf("plan 1: %v", err)
	}
	p2, err := buildPlan(cfg, m)
	if err != nil {
		t.Fatalf("plan 2: %v", err)
	}
	if p1.fingerprint() != p2.fingerprint() {
		t.Fatalf("equal configs fingerprint differently: %016x vs %016x", p1.fingerprint(), p2.fingerprint())
	}
	if len(p1.Ops) != 500 || len(p1.Specs) != 3 {
		t.Fatalf("plan shape: %d ops, %d specs", len(p1.Ops), len(p1.Specs))
	}
	cfg.Seed = 8
	p3, err := buildPlan(cfg, m)
	if err != nil {
		t.Fatalf("plan 3: %v", err)
	}
	if p3.fingerprint() == p1.fingerprint() {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

func TestPlanOpMix(t *testing.T) {
	m := testModel(t, 20)
	p, err := buildPlan(planConfig{Seed: 1, Requests: 2000, Campaigns: 2, Iterations: 5, PredictBatch: 3, CloneRate: 0.5, Clones: 1}, m)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	counts := map[string]int{}
	clones := 0
	lo, hi := m.Bounds()
	for _, o := range p.Ops {
		counts[o.Kind]++
		clones += o.Clones
		if o.Campaign < 0 || o.Campaign >= 2 {
			t.Fatalf("op targets campaign %d", o.Campaign)
		}
		for _, pt := range o.Points {
			if pt[0] < lo[0] || pt[0] > hi[0] {
				t.Fatalf("planned point %v outside recorded bounds [%v, %v]", pt, lo[0], hi[0])
			}
		}
	}
	// The mix is seeded-random; just require every kind present and
	// predict dominant, as documented.
	if counts[opPredict] < counts[opSuggest] || counts[opSuggest] == 0 || counts[opStatus] == 0 {
		t.Fatalf("degenerate op mix: %v", counts)
	}
	if clones < 500 {
		t.Fatalf("clone rate 0.5 over 2000 ops produced only %d clones", clones)
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 6}, {1, 10},
	} {
		if got := quantile(sorted, tc.q); got != tc.want {
			t.Errorf("quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

var fpLine = regexp.MustCompile(`plan fingerprint ([0-9a-f]{16})`)

// TestFingerprintStableAcrossRuns runs the full surrogate bootstrap +
// planning twice in separate invocations and requires the identical
// fingerprint — the reproducibility claim the SLO gate leans on.
func TestFingerprintStableAcrossRuns(t *testing.T) {
	fp := func() string {
		var out, errb bytes.Buffer
		code := run([]string{"-fingerprint-only", "-seed", "13", "-requests", "200", "-record-iterations", "6"}, &out, &errb)
		if code != 0 {
			t.Fatalf("run exited %d: %s%s", code, out.String(), errb.String())
		}
		m := fpLine.FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("no fingerprint in output:\n%s", out.String())
		}
		return m[1]
	}
	if a, b := fp(), fp(); a != b {
		t.Fatalf("fingerprints differ across runs: %s vs %s", a, b)
	}
}

// TestReplayEndToEnd runs a small but complete replay — bootstrap
// recording, surrogate fit, in-process server, campaign drivers, and
// the background stream — and checks the SLO report it writes.
func TestReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay in -short mode")
	}
	out := filepath.Join(t.TempDir(), "slo.json")
	var stdout, stderrB bytes.Buffer
	code := run([]string{
		"-requests", "400",
		"-campaigns", "2",
		"-iterations", "6",
		"-record-iterations", "12",
		"-concurrency", "8",
		"-clone-rate", "0.1",
		"-seed", "5",
		"-slo-out", out,
	}, &stdout, &stderrB)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderrB.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep SLOReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report parse: %v", err)
	}
	if rep.PlannedRequests != 400 {
		t.Errorf("planned %d, want 400", rep.PlannedRequests)
	}
	if rep.TotalRequests < 400 {
		t.Errorf("total %d < planned 400 (driver traffic missing?)", rep.TotalRequests)
	}
	if rep.ErrorRate != 0 {
		t.Errorf("error rate %v on a chaos-free local replay", rep.ErrorRate)
	}
	if len(rep.Fingerprint) != 16 {
		t.Errorf("fingerprint %q", rep.Fingerprint)
	}
	if rep.Surrogate.Kind != "knn" || rep.Surrogate.Samples == 0 {
		t.Errorf("surrogate block %+v", rep.Surrogate)
	}
	// The 0.15 contract applies to the 20-iteration reference recording
	// (internal/surrogate tests); this shorter one just has to be sane.
	if rep.Surrogate.LOORelRMSE > 0.5 {
		t.Errorf("surrogate LOO rel RMSE %.4f is unusably large", rep.Surrogate.LOORelRMSE)
	}
	for _, route := range []string{"predict", "suggest", "observe", "status", "create"} {
		rr, ok := rep.Routes[route]
		if !ok {
			t.Fatalf("route %s missing from report", route)
		}
		if route != "status" && rr.Requests == 0 {
			t.Errorf("route %s saw no traffic", route)
		}
		if rr.Requests > 0 && rr.P99Ms < rr.P50Ms {
			t.Errorf("route %s: p99 %.2fms < p50 %.2fms", route, rr.P99Ms, rr.P50Ms)
		}
	}
	if rep.Routes["observe"].OK < 2*6 {
		t.Errorf("observe ok %d, want at least campaigns*iterations=12", rep.Routes["observe"].OK)
	}
	if !strings.Contains(stdout.String(), "plan fingerprint") {
		t.Errorf("summary missing fingerprint line:\n%s", stdout.String())
	}
}
