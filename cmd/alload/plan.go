package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/serve"
	"repro/internal/surrogate"
)

// Op kinds for background replay traffic. The mix models what a fleet
// of analysis dashboards and lab clients does to a campaign service:
// mostly prediction batches, a steady trickle of suggest polls and
// status reads.
const (
	opPredict = "predict"
	opSuggest = "suggest"
	opStatus  = "status"
)

// op is one planned background request (plus optional clones — exact
// duplicates fired concurrently, modeling impatient or misconfigured
// clients and exercising the server's idempotent read paths).
type op struct {
	Kind     string
	Campaign int         // index into plan.Specs
	Points   [][]float64 // predict batches only
	Clones   int
}

// planConfig parameterizes buildPlan. Everything here is part of the
// fingerprint: two equal configs over equal surrogates yield
// byte-identical plans.
type planConfig struct {
	Seed         int64
	Requests     int
	Campaigns    int
	Iterations   int
	PredictBatch int
	CloneRate    float64
	Clones       int
}

// driverStrategies is the fixed strategy rotation replay campaigns
// cycle through — a spread of cheap and scoring-heavy rules so replayed
// load hits both fast and slow server paths.
var driverStrategies = []string{"variance-reduction", "cost-efficiency", "thompson", "random"}

// plan is a fully materialized load profile: the campaign specs the
// drivers run and the exact background request sequence. Built once
// from (config, surrogate) and then immutable, so a replay is
// reproducible from its seed alone.
type plan struct {
	Config planConfig
	Specs  []serve.CampaignSpec
	Ops    []op
}

// buildPlan derives the load profile from the surrogate: campaign
// candidate grids are the deduplicated recorded inputs (every row has a
// faithful surrogate response) and predict points are drawn from the
// recorded bounds, so replayed traffic stays on the recorded response
// surface.
func buildPlan(cfg planConfig, sur *surrogate.Model) (*plan, error) {
	grid := sur.Grid()
	if len(grid) < 2 {
		return nil, fmt.Errorf("surrogate grid has %d distinct points, need at least 2", len(grid))
	}
	lo, hi := sur.Bounds()
	p := &plan{Config: cfg}

	for i := 0; i < cfg.Campaigns; i++ {
		p.Specs = append(p.Specs, serve.CampaignSpec{
			Name:       fmt.Sprintf("replay-%d", i),
			Source:     "client",
			Candidates: grid,
			Seeds:      []int{0, len(grid) - 1},
			Strategy:   driverStrategies[i%len(driverStrategies)],
			Iterations: cfg.Iterations,
			Restarts:   1,
			Seed:       cfg.Seed + int64(i),
		})
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	point := func() []float64 {
		if rng.Float64() < 0.6 {
			// Snap to a recorded input: exact-at-training-point territory,
			// and a likely prediction-cache hit under cloning.
			return grid[rng.Intn(len(grid))]
		}
		x := make([]float64, len(lo))
		for d := range x {
			x[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
		}
		return x
	}
	p.Ops = make([]op, cfg.Requests)
	for i := range p.Ops {
		o := op{Campaign: rng.Intn(cfg.Campaigns)}
		switch r := rng.Float64(); {
		case r < 0.80:
			o.Kind = opPredict
			o.Points = make([][]float64, cfg.PredictBatch)
			for j := range o.Points {
				o.Points[j] = point()
			}
		case r < 0.92:
			o.Kind = opSuggest
		default:
			o.Kind = opStatus
		}
		if cfg.Clones > 0 && rng.Float64() < cfg.CloneRate {
			o.Clones = cfg.Clones
		}
		p.Ops[i] = o
	}
	return p, nil
}

// fingerprint hashes the full plan — config, specs, every op and every
// planned point — to one uint64. Equal seeds over equal recordings must
// produce equal fingerprints; the e2e test and the slo-smoke CI lane
// assert exactly that.
func (p *plan) fingerprint() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	wi := func(v int) { w64(uint64(int64(v))) }
	ws := func(s string) {
		wi(len(s))
		h.Write([]byte(s))
	}

	w64(uint64(p.Config.Seed))
	wi(p.Config.Requests)
	wi(p.Config.Campaigns)
	wi(p.Config.Iterations)
	wi(p.Config.PredictBatch)
	wf(p.Config.CloneRate)
	wi(p.Config.Clones)

	for _, spec := range p.Specs {
		ws(spec.Strategy)
		w64(uint64(spec.Seed))
		wi(spec.Iterations)
		wi(len(spec.Candidates))
		for _, row := range spec.Candidates {
			for _, v := range row {
				wf(v)
			}
		}
		for _, s := range spec.Seeds {
			wi(s)
		}
	}
	for _, o := range p.Ops {
		ws(o.Kind)
		wi(o.Campaign)
		wi(o.Clones)
		wi(len(o.Points))
		for _, pt := range o.Points {
			for _, v := range pt {
				wf(v)
			}
		}
	}
	return h.Sum64()
}
